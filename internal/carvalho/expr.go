// Package carvalho reimplements the genetic-programming record
// deduplication approach of de Carvalho, Laender, Gonçalves & da Silva
// (IEEE TKDE 24(3), 2012) — the state-of-the-art baseline GenLink is
// compared against in Tables 7 and 8 of the paper.
//
// Their representation combines a presupplied set of evidence leaves
// ⟨attribute, similarity function⟩ with arithmetic function nodes
// (+, −, ×, protected ÷, power) and random constants. A pair of records is
// classified as a replica when the evaluated tree value reaches a fixed
// decision boundary. Unlike GenLink, the representation cannot express data
// transformations and uses plain subtree crossover.
package carvalho

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"genlink/internal/entity"
	"genlink/internal/similarity"
)

// Evidence is one presupplied ⟨attribute pair, similarity function⟩ leaf.
// Its value for an entity pair is a similarity in [0,1].
type Evidence struct {
	// AttrA and AttrB name the compared properties in each source.
	AttrA, AttrB string
	// Measure is a distance measure whose value is mapped to a
	// similarity: sim = 1/(1+d) for unbounded measures, 1−d for
	// [0,1]-bounded ones.
	Measure similarity.Measure
	// Bounded marks measures whose distance already lies in [0,1].
	Bounded bool
}

// Value computes the evidence similarity for a pair.
func (ev Evidence) Value(a, b *entity.Entity) float64 {
	d := ev.Measure.Distance(a.Values(ev.AttrA), b.Values(ev.AttrB))
	if math.IsInf(d, 1) || math.IsNaN(d) {
		return 0
	}
	if ev.Bounded {
		if d > 1 {
			d = 1
		}
		return 1 - d
	}
	return 1 / (1 + d)
}

// Node is one node of the arithmetic genome tree.
type Node struct {
	// Op is one of "+", "-", "*", "/", "pow" for internal nodes,
	// "evidence" for evidence leaves and "const" for constant leaves.
	Op string
	// Left and Right are the children of internal nodes.
	Left, Right *Node
	// EvidenceIdx selects an evidence leaf.
	EvidenceIdx int
	// Const holds the value of constant leaves.
	Const float64
}

// Eval computes the tree value over the evidence vector. Overflow and NaN
// are clamped so fitness stays well defined.
func (n *Node) Eval(ev []float64) float64 {
	v := n.eval(ev)
	if math.IsNaN(v) {
		return 0
	}
	const limit = 1e9
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	return v
}

func (n *Node) eval(ev []float64) float64 {
	switch n.Op {
	case "evidence":
		if n.EvidenceIdx >= 0 && n.EvidenceIdx < len(ev) {
			return ev[n.EvidenceIdx]
		}
		return 0
	case "const":
		return n.Const
	case "+":
		return n.Left.eval(ev) + n.Right.eval(ev)
	case "-":
		return n.Left.eval(ev) - n.Right.eval(ev)
	case "*":
		return n.Left.eval(ev) * n.Right.eval(ev)
	case "/":
		num, den := n.Left.eval(ev), n.Right.eval(ev)
		if math.Abs(den) < 1e-9 {
			return 1 // protected division
		}
		return num / den
	case "pow":
		base, exp := n.Left.eval(ev), n.Right.eval(ev)
		// Protected power: |base|^clamped-exponent.
		if exp > 10 {
			exp = 10
		}
		if exp < -10 {
			exp = -10
		}
		v := math.Pow(math.Abs(base), exp)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 1
		}
		return v
	default:
		return 0
	}
}

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	return &Node{Op: n.Op, Left: n.Left.Clone(), Right: n.Right.Clone(),
		EvidenceIdx: n.EvidenceIdx, Const: n.Const}
}

// Size returns the node count.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	return 1 + n.Left.Size() + n.Right.Size()
}

// Depth returns the tree height.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if r > l {
		l = r
	}
	return 1 + l
}

// String renders the expression in infix notation.
func (n *Node) String() string {
	switch n.Op {
	case "evidence":
		return fmt.Sprintf("E%d", n.EvidenceIdx)
	case "const":
		return fmt.Sprintf("%.3g", n.Const)
	case "pow":
		return fmt.Sprintf("pow(%s, %s)", n.Left, n.Right)
	default:
		return fmt.Sprintf("(%s %s %s)", n.Left, n.Op, n.Right)
	}
}

// nodes collects all nodes in pre-order.
func (n *Node) nodes() []*Node {
	if n == nil {
		return nil
	}
	out := []*Node{n}
	out = append(out, n.Left.nodes()...)
	out = append(out, n.Right.nodes()...)
	return out
}

var internalOps = []string{"+", "-", "*", "/", "pow"}

// RandomTree grows a random expression tree up to the given depth —
// exported for benchmarks and downstream experimentation.
func RandomTree(rng *rand.Rand, numEvidence, depth int) *Node {
	return randomTree(rng, numEvidence, depth)
}

// randomTree grows a random expression tree up to the given depth
// (grow method: leaves may appear early).
func randomTree(rng *rand.Rand, numEvidence, depth int) *Node {
	if depth <= 1 || rng.Float64() < 0.3 {
		if rng.Float64() < 0.75 {
			return &Node{Op: "evidence", EvidenceIdx: rng.Intn(numEvidence)}
		}
		return &Node{Op: "const", Const: math.Round(rng.Float64()*90)/10 + 0.1}
	}
	op := internalOps[rng.Intn(len(internalOps))]
	return &Node{
		Op:    op,
		Left:  randomTree(rng, numEvidence, depth-1),
		Right: randomTree(rng, numEvidence, depth-1),
	}
}

// subtreeCrossover swaps a random subtree of a (clone) with a random
// subtree of b.
func subtreeCrossover(rng *rand.Rand, a, b *Node) *Node {
	child := a.Clone()
	targets := child.nodes()
	donors := b.nodes()
	target := targets[rng.Intn(len(targets))]
	donor := donors[rng.Intn(len(donors))].Clone()
	*target = *donor
	return child
}

// mutate replaces a random subtree with a fresh random tree.
func mutate(rng *rand.Rand, a *Node, numEvidence, depth int) *Node {
	child := a.Clone()
	targets := child.nodes()
	target := targets[rng.Intn(len(targets))]
	*target = *randomTree(rng, numEvidence, depth)
	return child
}

// BuildEvidence derives the presupplied evidence list from property pairs.
// For every pair the three string similarity functions the authors used
// most (normalized Levenshtein, Jaccard, Jaro) are instantiated; numeric-,
// date- or coordinate-valued pairs additionally receive their natural
// measure based on the pair's discovery measure name.
func BuildEvidence(pairs []PropertyPair) []Evidence {
	var out []Evidence
	seen := make(map[string]bool)
	for _, p := range pairs {
		key := p.A + "\x00" + p.B
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out,
			Evidence{AttrA: p.A, AttrB: p.B, Measure: similarity.NormalizedLevenshtein(), Bounded: true},
			Evidence{AttrA: p.A, AttrB: p.B, Measure: similarity.Jaccard(), Bounded: true},
			Evidence{AttrA: p.A, AttrB: p.B, Measure: similarity.Jaro(), Bounded: true},
		)
		switch {
		case strings.Contains(p.Measure, "geographic"):
			out = append(out, Evidence{AttrA: p.A, AttrB: p.B, Measure: similarity.Geographic()})
		case strings.Contains(p.Measure, "date"):
			out = append(out, Evidence{AttrA: p.A, AttrB: p.B, Measure: similarity.Date()})
		case strings.Contains(p.Measure, "numeric"):
			out = append(out, Evidence{AttrA: p.A, AttrB: p.B, Measure: similarity.Numeric()})
		}
	}
	return out
}

// PropertyPair mirrors genlink.PropertyPair without importing the package
// (the baseline is presupplied its attribute pairs, Section 4).
type PropertyPair struct {
	A, B    string
	Measure string
}
