package carvalho

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"genlink/internal/entity"
	"genlink/internal/similarity"
)

func TestEvidenceValue(t *testing.T) {
	a := entity.New("a")
	a.Add("name", "berlin")
	b := entity.New("b")
	b.Add("name", "berlin")
	ev := Evidence{AttrA: "name", AttrB: "name", Measure: similarity.NormalizedLevenshtein(), Bounded: true}
	if got := ev.Value(a, b); got != 1 {
		t.Fatalf("identical evidence = %v, want 1", got)
	}
	c := entity.New("c") // missing property → 0
	if got := ev.Value(a, c); got != 0 {
		t.Fatalf("missing evidence = %v, want 0", got)
	}
}

func TestEvidenceUnbounded(t *testing.T) {
	a := entity.New("a")
	a.Add("v", "10")
	b := entity.New("b")
	b.Add("v", "13")
	ev := Evidence{AttrA: "v", AttrB: "v", Measure: similarity.Numeric()}
	if got := ev.Value(a, b); math.Abs(got-0.25) > 1e-12 { // 1/(1+3)
		t.Fatalf("numeric evidence = %v, want 0.25", got)
	}
}

func TestNodeEval(t *testing.T) {
	ev := []float64{0.5, 1.0}
	e0 := &Node{Op: "evidence", EvidenceIdx: 0}
	e1 := &Node{Op: "evidence", EvidenceIdx: 1}
	c2 := &Node{Op: "const", Const: 2}
	cases := []struct {
		node *Node
		want float64
	}{
		{&Node{Op: "+", Left: e0, Right: e1}, 1.5},
		{&Node{Op: "-", Left: e1, Right: e0}, 0.5},
		{&Node{Op: "*", Left: e0, Right: c2}, 1.0},
		{&Node{Op: "/", Left: e1, Right: c2}, 0.5},
		{&Node{Op: "/", Left: e1, Right: &Node{Op: "const", Const: 0}}, 1}, // protected
		{&Node{Op: "pow", Left: c2, Right: c2}, 4},
		{e0, 0.5},
		{c2, 2},
		{&Node{Op: "evidence", EvidenceIdx: 99}, 0}, // out of range
		{&Node{Op: "??"}, 0},
	}
	for i, c := range cases {
		if got := c.node.Eval(ev); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Eval = %v, want %v", i, got, c.want)
		}
	}
}

func TestEvalClamping(t *testing.T) {
	big := &Node{Op: "pow", Left: &Node{Op: "const", Const: 1e9}, Right: &Node{Op: "const", Const: 10}}
	v := big.Eval(nil)
	if math.IsInf(v, 0) || math.IsNaN(v) || v > 1e9 {
		t.Fatalf("Eval not clamped: %v", v)
	}
}

func TestCloneAndSize(t *testing.T) {
	tree := &Node{Op: "+",
		Left:  &Node{Op: "evidence", EvidenceIdx: 0},
		Right: &Node{Op: "const", Const: 1}}
	c := tree.Clone()
	c.Left.EvidenceIdx = 5
	if tree.Left.EvidenceIdx == 5 {
		t.Fatal("Clone shares nodes")
	}
	if tree.Size() != 3 || tree.Depth() != 2 {
		t.Fatalf("Size/Depth = %d/%d", tree.Size(), tree.Depth())
	}
	if got := tree.String(); got != "(E0 + 1)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRandomTreeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tr := randomTree(rng, 4, 5)
		if tr.Depth() > 5 {
			t.Fatalf("random tree depth %d exceeds limit", tr.Depth())
		}
		// Must evaluate without panic.
		tr.Eval([]float64{0.1, 0.2, 0.3, 0.4})
	}
}

func TestSubtreeCrossoverPreservesParents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomTree(rng, 3, 4)
	b := randomTree(rng, 3, 4)
	sa, sb := a.String(), b.String()
	child := subtreeCrossover(rng, a, b)
	if a.String() != sa || b.String() != sb {
		t.Fatal("crossover mutated a parent")
	}
	child.Eval([]float64{0.5, 0.5, 0.5})
}

func TestMutatePreservesParent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomTree(rng, 3, 4)
	sa := a.String()
	mutate(rng, a, 3, 4)
	if a.String() != sa {
		t.Fatal("mutate changed the parent")
	}
}

func TestBuildEvidence(t *testing.T) {
	pairs := []PropertyPair{
		{A: "name", B: "label", Measure: "levenshtein"},
		{A: "name", B: "label", Measure: "jaccard"}, // duplicate attr pair
		{A: "coord", B: "point", Measure: "geographic"},
		{A: "date", B: "released", Measure: "date"},
		{A: "pop", B: "population", Measure: "numeric"},
	}
	ev := BuildEvidence(pairs)
	// 4 distinct attr pairs × 3 string measures + 3 typed extras = 15.
	if len(ev) != 15 {
		t.Fatalf("evidence count = %d, want 15", len(ev))
	}
}

// dedupTask builds a toy dedup problem solvable by a single evidence leaf.
func dedupTask(n int) *entity.ReferenceLinks {
	refs := &entity.ReferenceLinks{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("record-%03d", i)
		a := entity.New("a" + name)
		a.Add("name", name)
		b := entity.New("b" + name)
		b.Add("name", strings.ToUpper(name))
		refs.Positive = append(refs.Positive, entity.Pair{A: a, B: b})
	}
	refs.Negative = entity.GenerateNegatives(refs.Positive)
	return refs
}

func TestLearnerSolvesToyDedup(t *testing.T) {
	refs := dedupTask(24)
	ev := BuildEvidence([]PropertyPair{{A: "name", B: "name", Measure: "levenshtein"}})
	cfg := DefaultConfig()
	cfg.PopulationSize = 60
	cfg.MaxIterations = 15
	cfg.Seed = 5
	cfg.Workers = 2
	res, err := NewLearner(cfg, ev).Learn(refs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrainF1 < 0.9 {
		t.Fatalf("baseline train F1 = %v on trivially learnable task\ntree: %s",
			res.BestTrainF1, res.Best.Tree)
	}
}

func TestLearnerValidation(t *testing.T) {
	refs := dedupTask(40)
	train := &entity.ReferenceLinks{Positive: refs.Positive[:20], Negative: refs.Negative[:20]}
	val := &entity.ReferenceLinks{Positive: refs.Positive[20:], Negative: refs.Negative[20:]}
	ev := BuildEvidence([]PropertyPair{{A: "name", B: "name"}})
	cfg := DefaultConfig()
	cfg.PopulationSize = 60
	cfg.MaxIterations = 10
	cfg.Seed = 6
	res, err := NewLearner(cfg, ev).Learn(train, val)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValF1 <= 0 {
		t.Fatalf("validation F1 = %v", res.BestValF1)
	}
}

func TestLearnerErrors(t *testing.T) {
	if _, err := NewLearner(DefaultConfig(), nil).Learn(dedupTask(4), nil); err == nil {
		t.Fatal("no evidence should error")
	}
	ev := BuildEvidence([]PropertyPair{{A: "x", B: "x"}})
	if _, err := NewLearner(DefaultConfig(), ev).Learn(nil, nil); err == nil {
		t.Fatal("nil links should error")
	}
	if _, err := NewLearner(DefaultConfig(), ev).Learn(&entity.ReferenceLinks{}, nil); err == nil {
		t.Fatal("empty links should error")
	}
}

func TestClassifierEvaluate(t *testing.T) {
	refs := dedupTask(10)
	ev := BuildEvidence([]PropertyPair{{A: "name", B: "name"}})
	// Hand-built classifier: 2 × jaro-similarity ≥ 1 ⟺ sim ≥ 0.5.
	clf := &Classifier{
		Tree: &Node{Op: "*",
			Left:  &Node{Op: "const", Const: 2},
			Right: &Node{Op: "evidence", EvidenceIdx: 2}},
		Evidence: ev,
	}
	conf := clf.Evaluate(refs)
	if conf.TP+conf.FN != len(refs.Positive) {
		t.Fatal("confusion does not cover all positives")
	}
}

// Property: random trees always evaluate to finite clamped values.
func TestEvalFiniteProperty(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2, 6)
		v := tr.Eval([]float64{math.Abs(a), math.Abs(b)})
		return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) <= 1e9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
