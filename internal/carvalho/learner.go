package carvalho

import (
	"errors"
	"math/rand"
	"time"

	"genlink/internal/entity"
	"genlink/internal/evalx"
	"genlink/internal/gp"
)

// DecisionBoundary is the fixed classification threshold: a pair is
// predicted a replica when the evaluated expression reaches it.
const DecisionBoundary = 1.0

// Config holds the baseline's GP parameters. For a fair comparison the
// defaults match GenLink's Table 4 settings where applicable.
type Config struct {
	PopulationSize      int
	MaxIterations       int
	TournamentSize      int
	MutationProbability float64
	// MaxDepth bounds generated and mutated subtrees.
	MaxDepth int
	// Elitism copies the best individual into the next generation
	// (the authors' reproduction operator).
	Elitism int
	Workers int
	Seed    int64
}

// DefaultConfig mirrors Table 4 where the representations overlap.
func DefaultConfig() Config {
	return Config{
		PopulationSize:      500,
		MaxIterations:       50,
		TournamentSize:      5,
		MutationProbability: 0.25,
		MaxDepth:            5,
		Elitism:             1,
		Workers:             0,
		Seed:                1,
	}
}

// Classifier is a learned deduplication function.
type Classifier struct {
	Tree     *Node
	Evidence []Evidence
}

// Score computes the raw expression value for a pair.
func (c *Classifier) Score(a, b *entity.Entity) float64 {
	ev := make([]float64, len(c.Evidence))
	for i, e := range c.Evidence {
		ev[i] = e.Value(a, b)
	}
	return c.Tree.Eval(ev)
}

// Matches reports whether the pair is classified as a replica.
func (c *Classifier) Matches(a, b *entity.Entity) bool {
	return c.Score(a, b) >= DecisionBoundary
}

// Evaluate computes the confusion matrix of the classifier over links.
func (c *Classifier) Evaluate(refs *entity.ReferenceLinks) evalx.Confusion {
	var conf evalx.Confusion
	for _, p := range refs.Positive {
		if c.Matches(p.A, p.B) {
			conf.TP++
		} else {
			conf.FN++
		}
	}
	for _, p := range refs.Negative {
		if c.Matches(p.A, p.B) {
			conf.FP++
		} else {
			conf.TN++
		}
	}
	return conf
}

// Result is the outcome of a baseline learning run.
type Result struct {
	Best        *Classifier
	BestTrainF1 float64
	BestValF1   float64
	Iterations  int
	Elapsed     time.Duration
}

// Learner runs the baseline GP.
type Learner struct {
	cfg      Config
	evidence []Evidence
}

// NewLearner returns a learner over the presupplied evidence.
func NewLearner(cfg Config, evidence []Evidence) *Learner {
	if cfg.PopulationSize <= 0 {
		cfg.PopulationSize = DefaultConfig().PopulationSize
	}
	if cfg.TournamentSize <= 0 {
		cfg.TournamentSize = DefaultConfig().TournamentSize
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = DefaultConfig().MaxDepth
	}
	return &Learner{cfg: cfg, evidence: evidence}
}

type indiv struct {
	tree *Node
	f1   float64
}

// Learn evolves an expression tree maximizing training F1 (the authors'
// fitness) and reports validation F1 of the final best tree.
func (l *Learner) Learn(train, val *entity.ReferenceLinks) (*Result, error) {
	if len(l.evidence) == 0 {
		return nil, errors.New("carvalho: no evidence supplied")
	}
	if train == nil || len(train.Positive) == 0 || len(train.Negative) == 0 {
		return nil, errors.New("carvalho: training links need positives and negatives")
	}
	rng := rand.New(rand.NewSource(l.cfg.Seed))
	start := time.Now()

	// Precompute the evidence matrix once per training pair: tree
	// evaluation then costs O(size) per pair instead of recomputing string
	// distances for every individual.
	posEv := evidenceMatrix(l.evidence, train.Positive)
	negEv := evidenceMatrix(l.evidence, train.Negative)

	fitness := func(in *indiv) float64 {
		var conf evalx.Confusion
		for _, ev := range posEv {
			if in.tree.Eval(ev) >= DecisionBoundary {
				conf.TP++
			} else {
				conf.FN++
			}
		}
		for _, ev := range negEv {
			if in.tree.Eval(ev) >= DecisionBoundary {
				conf.FP++
			} else {
				conf.TN++
			}
		}
		in.f1 = conf.FMeasure()
		return in.f1
	}

	pop := l.randomPopulation(rng)
	pop.Evaluate(fitness, l.cfg.Workers)

	iterations := 0
	for iter := 1; iter <= l.cfg.MaxIterations; iter++ {
		best := pop.Individuals[pop.Best()].Genome
		if best.f1 >= 1.0 {
			break
		}
		next := make([]gp.Individual[*indiv], 0, l.cfg.PopulationSize)
		for e := 0; e < l.cfg.Elitism && e < pop.Len(); e++ {
			next = append(next, gp.Individual[*indiv]{Genome: &indiv{tree: best.tree.Clone()}})
		}
		for len(next) < l.cfg.PopulationSize {
			i1, i2 := pop.SelectPair(rng, l.cfg.TournamentSize)
			t1 := pop.Individuals[i1].Genome.tree
			t2 := pop.Individuals[i2].Genome.tree
			var child *Node
			if rng.Float64() < l.cfg.MutationProbability {
				child = mutate(rng, t1, len(l.evidence), l.cfg.MaxDepth)
			} else {
				child = subtreeCrossover(rng, t1, t2)
			}
			if child.Depth() > 2*l.cfg.MaxDepth {
				child = randomTree(rng, len(l.evidence), l.cfg.MaxDepth)
			}
			next = append(next, gp.Individual[*indiv]{Genome: &indiv{tree: child}})
		}
		pop = &gp.Population[*indiv]{Individuals: next}
		pop.Evaluate(fitness, l.cfg.Workers)
		iterations = iter
	}

	best := pop.Individuals[pop.Best()].Genome
	clf := &Classifier{Tree: best.tree, Evidence: l.evidence}
	res := &Result{
		Best:        clf,
		BestTrainF1: best.f1,
		Iterations:  iterations,
		Elapsed:     time.Since(start),
	}
	if val != nil {
		res.BestValF1 = clf.Evaluate(val).FMeasure()
	}
	return res, nil
}

func (l *Learner) randomPopulation(rng *rand.Rand) *gp.Population[*indiv] {
	inds := make([]gp.Individual[*indiv], l.cfg.PopulationSize)
	for i := range inds {
		inds[i] = gp.Individual[*indiv]{Genome: &indiv{
			tree: randomTree(rng, len(l.evidence), l.cfg.MaxDepth),
		}}
	}
	return &gp.Population[*indiv]{Individuals: inds}
}

func evidenceMatrix(evidence []Evidence, pairs []entity.Pair) [][]float64 {
	out := make([][]float64, len(pairs))
	for i, p := range pairs {
		row := make([]float64, len(evidence))
		for j, ev := range evidence {
			row[j] = ev.Value(p.A, p.B)
		}
		out[i] = row
	}
	return out
}
