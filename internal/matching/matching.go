// Package matching executes linkage rules over whole data sources.
//
// The paper defers efficient rule execution to the MultiBlock method of
// Isele & Bizer 2011 ([19] in the paper); this package provides a
// token-blocking substitute: candidate pairs are generated from shared
// lowercased value tokens, then scored with the rule. Blocking only
// affects wall-clock cost, not rule semantics; a full cartesian matcher is
// provided for exactness checks and the blocking-ablation bench.
package matching

import (
	"sort"
	"strings"

	"genlink/internal/entity"
	"genlink/internal/rule"
)

// Link is a scored match produced by rule execution.
type Link struct {
	AID, BID string
	Score    float64
}

// Options tunes rule execution.
type Options struct {
	// Threshold is the minimum similarity to emit a link
	// (default: rule.MatchThreshold).
	Threshold float64
	// MaxBlockSize skips tokens shared by more than this many entities
	// (stop-token suppression; 0 means no limit). Very frequent tokens
	// generate quadratically many candidates while carrying no signal.
	MaxBlockSize int
}

// defaultMaxBlockSize suppresses tokens occurring in >5% of a source when
// the caller does not choose a limit; see Options.MaxBlockSize.
func (o *Options) normalize(sourceSize int) {
	if o.Threshold == 0 {
		o.Threshold = rule.MatchThreshold
	}
	if o.MaxBlockSize == 0 {
		o.MaxBlockSize = sourceSize/20 + 50
	}
}

// Index maps lowercased value tokens to the entities containing them.
type Index struct {
	byToken map[string][]*entity.Entity
}

// BuildIndex indexes every token of every property value of the source.
func BuildIndex(src *entity.Source) *Index {
	idx := &Index{byToken: make(map[string][]*entity.Entity)}
	for _, e := range src.Entities {
		seen := make(map[string]struct{})
		for _, values := range e.Properties {
			for _, v := range values {
				for _, tok := range strings.Fields(strings.ToLower(v)) {
					if _, dup := seen[tok]; dup {
						continue
					}
					seen[tok] = struct{}{}
					idx.byToken[tok] = append(idx.byToken[tok], e)
				}
			}
		}
	}
	return idx
}

// Tokens returns the number of distinct tokens in the index.
func (idx *Index) Tokens() int { return len(idx.byToken) }

// Candidates returns the entities sharing at least one token with e,
// skipping blocks larger than maxBlock.
func (idx *Index) Candidates(e *entity.Entity, maxBlock int) []*entity.Entity {
	seen := make(map[*entity.Entity]struct{})
	var out []*entity.Entity
	tokens := make(map[string]struct{})
	for _, values := range e.Properties {
		for _, v := range values {
			for _, tok := range strings.Fields(strings.ToLower(v)) {
				tokens[tok] = struct{}{}
			}
		}
	}
	for tok := range tokens {
		block := idx.byToken[tok]
		if maxBlock > 0 && len(block) > maxBlock {
			continue
		}
		for _, cand := range block {
			if _, dup := seen[cand]; dup {
				continue
			}
			seen[cand] = struct{}{}
			out = append(out, cand)
		}
	}
	return out
}

// Match executes the rule over A×B using token blocking and returns all
// links with score ≥ threshold, sorted by descending score then IDs.
func Match(r *rule.Rule, a, b *entity.Source, opts Options) []Link {
	opts.normalize(b.Len())
	idx := BuildIndex(b)
	var links []Link
	for _, ea := range a.Entities {
		for _, eb := range idx.Candidates(ea, opts.MaxBlockSize) {
			if ea.ID == eb.ID {
				continue // self pairs are meaningless in dedup setups
			}
			if score := r.Evaluate(ea, eb); score >= opts.Threshold {
				links = append(links, Link{AID: ea.ID, BID: eb.ID, Score: score})
			}
		}
	}
	sortLinks(links)
	return links
}

// MatchCartesian executes the rule over the full cross product — exact but
// quadratic. Used by tests and the blocking ablation.
func MatchCartesian(r *rule.Rule, a, b *entity.Source, opts Options) []Link {
	opts.normalize(b.Len())
	var links []Link
	for _, ea := range a.Entities {
		for _, eb := range b.Entities {
			if ea.ID == eb.ID {
				continue
			}
			if score := r.Evaluate(ea, eb); score >= opts.Threshold {
				links = append(links, Link{AID: ea.ID, BID: eb.ID, Score: score})
			}
		}
	}
	sortLinks(links)
	return links
}

func sortLinks(links []Link) {
	sort.Slice(links, func(i, j int) bool {
		if links[i].Score != links[j].Score {
			return links[i].Score > links[j].Score
		}
		if links[i].AID != links[j].AID {
			return links[i].AID < links[j].AID
		}
		return links[i].BID < links[j].BID
	})
}
