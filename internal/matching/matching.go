// Package matching executes linkage rules over whole data sources.
//
// The paper defers efficient rule execution to the MultiBlock method of
// Isele & Bizer 2011 ([19] in the paper); this package provides a
// pluggable blocking subsystem in its spirit: a Blocker proposes candidate
// pairs, the rule scores them. Four strategies are built in —
//
//   - TokenBlocking: pairs sharing a lowercased value token (the default);
//   - SortedNeighborhood: a windowed scan over a normalized sort key,
//     generating O(n·window) candidates regardless of token-frequency skew;
//   - QGramBlocking: pairs sharing a character q-gram, robust to typos;
//   - MultiPass: the union of several passes, the MultiBlock idea of
//     indexing each similarity dimension separately.
//
// Blocking only affects wall-clock cost and pairs-completeness (which true
// matches get scored at all), never rule semantics; MatchCartesian scores
// every pair and anchors exactness tests and the blocking-ablation bench.
package matching

import (
	"sort"
	"strings"

	"genlink/internal/entity"
	"genlink/internal/evalengine"
	"genlink/internal/rule"
)

// Link is a scored match produced by rule execution.
type Link struct {
	AID, BID string
	Score    float64
}

// Options tunes rule execution.
type Options struct {
	// Threshold is the minimum similarity to emit a link
	// (default: rule.MatchThreshold).
	Threshold float64
	// MaxBlockSize skips token/q-gram blocks shared by more than this
	// many entities (stop-token suppression; 0 means a source-size
	// derived default, negative means no limit). Very frequent tokens
	// generate quadratically many candidates while carrying no signal.
	MaxBlockSize int
	// Blocker selects the candidate-generation strategy
	// (default: TokenBlocking).
	Blocker Blocker
	// Stream enumerates candidates lazily instead of materializing the
	// deduplicated pair list: Match and MatchParallel score pairs as
	// blocking proposes them (per-A-entity memory instead of O(total
	// candidates)), applying the compiled rule's pushdown prefilter
	// before scoring, and the incremental index (internal/linkindex)
	// answers Query from pull iterators with early-exit top-k. Results
	// are identical either way; Stream trades the materialized list's
	// memory and allocation bill for streaming enumeration.
	Stream bool
}

// normalize fills defaults: the rule match threshold, stop-token
// suppression for tokens occurring in >5% of a source, and token blocking.
func (o *Options) normalize(sourceSize int) {
	if o.Threshold == 0 {
		o.Threshold = rule.MatchThreshold
	}
	if o.MaxBlockSize == 0 {
		o.MaxBlockSize = sourceSize/20 + 50
	}
	if o.Blocker == nil {
		o.Blocker = TokenBlocking()
	}
}

// Index maps lowercased value tokens to the entities containing them.
type Index struct {
	byToken map[string][]*entity.Entity
}

// Tokens returns the deduplicated lowercased whitespace-split tokens of
// every property value of e, in unspecified order. Every blocking
// strategy — batch and incremental (internal/linkindex) — tokenizes
// through this single helper so the strategies cannot silently diverge.
func Tokens(e *entity.Entity) []string {
	var d dedup
	for _, values := range e.Properties {
		for _, v := range values {
			for _, tok := range strings.Fields(strings.ToLower(v)) {
				d.add(tok)
			}
		}
	}
	return d.out
}

// dedupScan is the size up to which dedup uses a linear scan instead of
// a map; key extraction runs on every query, so small entities should
// not pay a map allocation just to deduplicate a handful of keys.
const dedupScan = 16

// dedup accumulates strings in first-seen order, dropping duplicates. It
// scans linearly while the result is small and switches to a lazily
// built map once it grows past dedupScan.
type dedup struct {
	out  []string
	seen map[string]struct{} // nil until len(out) > dedupScan
}

func (d *dedup) add(v string) {
	if d.seen == nil {
		for _, x := range d.out {
			if x == v {
				return
			}
		}
		d.out = append(d.out, v)
		if len(d.out) > dedupScan {
			d.seen = make(map[string]struct{}, 2*len(d.out))
			for _, x := range d.out {
				d.seen[x] = struct{}{}
			}
		}
		return
	}
	if _, dup := d.seen[v]; dup {
		return
	}
	d.seen[v] = struct{}{}
	d.out = append(d.out, v)
}

// BuildIndex indexes every token of every property value of the source.
func BuildIndex(src *entity.Source) *Index {
	idx := &Index{byToken: make(map[string][]*entity.Entity)}
	for _, e := range src.Entities {
		for _, tok := range Tokens(e) {
			idx.byToken[tok] = append(idx.byToken[tok], e)
		}
	}
	return idx
}

// Tokens returns the number of distinct tokens in the index.
func (idx *Index) Tokens() int { return len(idx.byToken) }

// Candidates returns the entities sharing at least one token with e,
// skipping blocks larger than maxBlock.
func (idx *Index) Candidates(e *entity.Entity, maxBlock int) []*entity.Entity {
	seen := make(map[*entity.Entity]struct{})
	var out []*entity.Entity
	for _, tok := range Tokens(e) {
		block := idx.byToken[tok]
		if !CapAllows(OthersInBlock(block, e, maxBlock), maxBlock) {
			continue
		}
		for _, cand := range block {
			if _, dup := seen[cand]; dup {
				continue
			}
			seen[cand] = struct{}{}
			out = append(out, cand)
		}
	}
	return out
}

// Match executes the rule over A×B using the blocker selected in opts
// (token blocking by default) and returns all links with score ≥
// threshold, sorted by descending score then IDs.
func Match(r *rule.Rule, a, b *entity.Source, opts Options) []Link {
	opts.normalize(b.Len())
	if opts.Stream {
		return matchStream(r, a, b, opts)
	}
	links := scorePairs(r, CandidatePairs(opts.Blocker, a, b, opts), opts.Threshold)
	sortLinks(links)
	return links
}

// MatchPairs scores precomputed candidate pairs (as returned by
// CandidatePairs) and returns the links sorted like Match. It lets
// callers that already hold the pair list — the blocking ablation, custom
// pipelines — avoid re-running the blocker; only opts.Threshold is used.
func MatchPairs(r *rule.Rule, pairs []Pair, opts Options) []Link {
	if opts.Threshold == 0 {
		opts.Threshold = rule.MatchThreshold
	}
	links := scorePairs(r, pairs, opts.Threshold)
	sortLinks(links)
	return links
}

// scorePairs evaluates the rule on each candidate pair and keeps links
// scoring at or above the threshold. CandidatePairs has already removed
// self pairs (meaningless in dedup setups) and duplicates.
//
// The rule is compiled once (internal/evalengine) and scored through a
// Scorer whose per-entity value-set cache pays each entity's
// transformation chains once, however many candidate pairs blocking puts
// it in. Scores are identical to Rule.Evaluate.
func scorePairs(r *rule.Rule, pairs []Pair, threshold float64) []Link {
	return scorePairsWith(evalengine.Compile(r).Scorer(), pairs, threshold)
}

// scorePairsWith scores pairs through an existing scorer (one per
// goroutine; a Scorer is not safe for concurrent use).
func scorePairsWith(scorer *evalengine.Scorer, pairs []Pair, threshold float64) []Link {
	var links []Link
	for _, p := range pairs {
		if score := scorer.Score(p.A, p.B); score >= threshold {
			links = append(links, Link{AID: p.A.ID, BID: p.B.ID, Score: score})
		}
	}
	return links
}

// MatchCartesian executes the rule over the full cross product — exact but
// quadratic. Used by tests and the blocking ablation. Like scorePairs it
// runs the compiled rule with per-entity value caching, which matters even
// more here: every entity appears in |B| (resp. |A|) pairs.
func MatchCartesian(r *rule.Rule, a, b *entity.Source, opts Options) []Link {
	opts.normalize(b.Len())
	scorer := evalengine.Compile(r).Scorer()
	var links []Link
	for _, ea := range a.Entities {
		for _, eb := range b.Entities {
			if ea.ID == eb.ID {
				continue
			}
			if score := scorer.Score(ea, eb); score >= opts.Threshold {
				links = append(links, Link{AID: ea.ID, BID: eb.ID, Score: score})
			}
		}
	}
	sortLinks(links)
	return links
}

func sortLinks(links []Link) {
	sort.Slice(links, func(i, j int) bool {
		if links[i].Score != links[j].Score {
			return links[i].Score > links[j].Score
		}
		if links[i].AID != links[j].AID {
			return links[i].AID < links[j].AID
		}
		return links[i].BID < links[j].BID
	})
}
