package matching

import (
	"strings"
	"testing"
	"unicode/utf8"

	"genlink/internal/entity"
)

// FuzzQGramsOf throws adversarial UTF-8 (and invalid byte sequences) at
// the q-gram key generator: it must never panic, never emit an empty
// gram, and must cover the whole token.
func FuzzQGramsOf(f *testing.F) {
	f.Add("", 3)
	f.Add("a", 3)
	f.Add("abc", 3)
	f.Add("abcdef", 3)
	f.Add("héllo wörld", 3)
	f.Add("日本語のテキスト", 2)
	f.Add("\xff\xfe\x00", 3)
	f.Add(strings.Repeat("é", 100), 0)
	f.Add("ab", -5)
	f.Fuzz(func(t *testing.T, tok string, q int) {
		grams := QGramsOf(tok, q)
		if tok == "" && grams != nil {
			t.Fatalf("QGramsOf(%q, %d) = %q, want nil for empty token", tok, q, grams)
		}
		eff := q
		if eff <= 0 {
			eff = 3
		}
		for _, g := range grams {
			if g == "" {
				t.Fatalf("QGramsOf(%q, %d) emitted an empty gram", tok, q)
			}
			if len(g) > eff && len(g) != len(tok) {
				t.Fatalf("QGramsOf(%q, %d) emitted oversized gram %q", tok, q, g)
			}
			if !strings.Contains(tok, g) {
				t.Fatalf("QGramsOf(%q, %d) emitted gram %q not in token", tok, q, g)
			}
		}
		if tok != "" {
			want := len(tok) - eff + 1
			if want < 1 {
				want = 1
			}
			if len(grams) != want {
				t.Fatalf("QGramsOf(%q, %d) returned %d grams, want %d", tok, q, len(grams), want)
			}
		}
	})
}

// FuzzBlockingKeys runs every key-extraction helper the blockers share
// over an adversarial single-property entity: tokenization, q-gram keys
// and the sorted-neighborhood sort keys must not panic and must stay
// internally consistent (no empty tokens, no empty grams, valid UTF-8
// never broken by the reversed key).
func FuzzBlockingKeys(f *testing.F) {
	f.Add("Scalable  Analysis of\tNetworks")
	f.Add("")
	f.Add("   ")
	f.Add("a b")
	f.Add("\xf0\x28\x8c\x28 broken utf8")
	f.Add("ＡＢＣ　ｄｅｆ")
	f.Fuzz(func(t *testing.T, value string) {
		e := entity.New("probe")
		e.Add("p", value)
		for _, tok := range Tokens(e) {
			if tok == "" {
				t.Fatalf("Tokens produced an empty token from %q", value)
			}
		}
		for _, g := range QGramKeys(e, 3) {
			if g == "" {
				t.Fatalf("QGramKeys produced an empty gram from %q", value)
			}
		}
		key := DefaultSortKey(e)
		rev := ReversedKey(DefaultSortKey)(e)
		if utf8.ValidString(key) && !utf8.ValidString(rev) {
			t.Fatalf("ReversedKey broke valid UTF-8 key %q -> %q", key, rev)
		}
		if utf8.ValidString(key) && utf8.RuneCountInString(rev) != utf8.RuneCountInString(key) {
			t.Fatalf("ReversedKey changed rune count: %q -> %q", key, rev)
		}
	})
}
