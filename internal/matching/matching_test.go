package matching

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"genlink/internal/entity"
	"genlink/internal/rule"
	"genlink/internal/similarity"
	"genlink/internal/transform"
)

func citySources(n int) (*entity.Source, *entity.Source) {
	a := entity.NewSource("a")
	b := entity.NewSource("b")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("city%03d", i)
		ea := entity.New("a/" + name)
		ea.Add("label", name)
		ea.Add("coord", fmt.Sprintf("%f %f", 40+float64(i)*0.1, 10+float64(i)*0.1))
		a.Add(ea)
		eb := entity.New("b/" + name)
		eb.Add("label", name)
		eb.Add("point", fmt.Sprintf("%f %f", 40+float64(i)*0.1, 10+float64(i)*0.1))
		b.Add(eb)
	}
	return a, b
}

func labelRule() *rule.Rule {
	return rule.New(rule.NewComparison(
		rule.NewTransform(transform.LowerCase(), rule.NewProperty("label")),
		rule.NewTransform(transform.LowerCase(), rule.NewProperty("label")),
		similarity.Levenshtein(), 0.5))
}

func TestMatchFindsAllPairs(t *testing.T) {
	a, b := citySources(30)
	links := Match(labelRule(), a, b, Options{})
	if len(links) != 30 {
		t.Fatalf("links = %d, want 30", len(links))
	}
	for _, l := range links {
		if l.AID[2:] != l.BID[2:] {
			t.Fatalf("wrong link %v", l)
		}
		if l.Score < rule.MatchThreshold {
			t.Fatalf("link below threshold: %v", l)
		}
	}
}

func TestMatchAgainstCartesian(t *testing.T) {
	a, b := citySources(25)
	blocked := Match(labelRule(), a, b, Options{})
	exact := MatchCartesian(labelRule(), a, b, Options{})
	if !reflect.DeepEqual(blocked, exact) {
		t.Fatalf("blocking changed results: %d vs %d links", len(blocked), len(exact))
	}
}

func TestMatchThresholdOption(t *testing.T) {
	a, b := citySources(10)
	// Threshold above 1 can never be reached.
	links := Match(labelRule(), a, b, Options{Threshold: 1.1})
	if len(links) != 0 {
		t.Fatalf("links above threshold 1.1 = %d", len(links))
	}
}

func TestIndexCandidates(t *testing.T) {
	src := entity.NewSource("s")
	e1 := entity.New("e1")
	e1.Add("label", "Berlin Mitte")
	e2 := entity.New("e2")
	e2.Add("label", "Berlin Spandau")
	e3 := entity.New("e3")
	e3.Add("label", "Hamburg")
	src.Add(e1)
	src.Add(e2)
	src.Add(e3)
	idx := BuildIndex(src)
	if idx.Tokens() != 4 { // berlin, mitte, spandau, hamburg
		t.Fatalf("tokens = %d", idx.Tokens())
	}
	probe := entity.New("p")
	probe.Add("name", "berlin")
	cands := idx.Candidates(probe, 0)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
}

func TestIndexStopTokenSuppression(t *testing.T) {
	src := entity.NewSource("s")
	for i := 0; i < 100; i++ {
		e := entity.New(fmt.Sprint("e", i))
		e.Add("label", fmt.Sprintf("the item%d", i)) // "the" is shared by all
		src.Add(e)
	}
	idx := BuildIndex(src)
	probe := entity.New("p")
	probe.Add("label", "the item5")
	all := idx.Candidates(probe, 0)
	if len(all) != 100 {
		t.Fatalf("unbounded candidates = %d", len(all))
	}
	limited := idx.Candidates(probe, 50)
	if len(limited) != 1 {
		t.Fatalf("suppressed candidates = %d, want 1 (only item5)", len(limited))
	}
}

func TestMatchSkipsSelfPairs(t *testing.T) {
	// Dedup setup: A and B are the same source.
	src := entity.NewSource("s")
	e1 := entity.New("e1")
	e1.Add("label", "alpha")
	e2 := entity.New("e2")
	e2.Add("label", "alpha")
	src.Add(e1)
	src.Add(e2)
	links := Match(labelRule(), src, src, Options{})
	for _, l := range links {
		if l.AID == l.BID {
			t.Fatalf("self link emitted: %v", l)
		}
	}
	if len(links) != 2 { // e1→e2 and e2→e1
		t.Fatalf("links = %d, want 2", len(links))
	}
}

func TestLinksSortedDeterministically(t *testing.T) {
	a, b := citySources(20)
	l1 := Match(labelRule(), a, b, Options{})
	l2 := Match(labelRule(), a, b, Options{})
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("match output not deterministic")
	}
	for i := 1; i < len(l1); i++ {
		if l1[i-1].Score < l1[i].Score {
			t.Fatal("links not sorted by descending score")
		}
	}
}

func TestBlockingRecallOnNoisyData(t *testing.T) {
	// Token blocking must retain pairs that share at least one token even
	// under per-token noise elsewhere.
	rng := rand.New(rand.NewSource(1))
	a := entity.NewSource("a")
	b := entity.NewSource("b")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key%04d", i)
		ea := entity.New(fmt.Sprint("a", i))
		ea.Add("label", key+" alpha gamma")
		a.Add(ea)
		eb := entity.New(fmt.Sprint("b", i))
		noise := fmt.Sprintf("beta%d", rng.Intn(1000))
		eb.Add("label", key+" alpha "+noise)
		b.Add(eb)
	}
	// Shared tokens {key, alpha} of 4 distinct → jaccard d = 0.5;
	// with θ = 1 the score is exactly 0.5, the link threshold.
	r := rule.New(rule.NewComparison(
		rule.NewTransform(transform.Tokenize(), rule.NewProperty("label")),
		rule.NewTransform(transform.Tokenize(), rule.NewProperty("label")),
		similarity.Jaccard(), 1))
	links := Match(r, a, b, Options{})
	found := make(map[string]bool)
	for _, l := range links {
		if l.AID[1:] == l.BID[1:] {
			found[l.AID] = true
		}
	}
	if len(found) != 50 {
		t.Fatalf("blocking lost matches: found %d/50", len(found))
	}
}
