package matching

import (
	"fmt"
	"sort"
	"strings"

	"genlink/internal/entity"
)

// Pair is a candidate entity pair produced by a Blocker. Blocking only
// proposes pairs; the linkage rule decides whether they match.
type Pair struct {
	A, B *entity.Entity
}

// Blocker generates candidate pairs for rule execution, decoupling
// candidate generation from scoring. A Blocker trades recall
// (pairs-completeness: the fraction of true matches among its candidates)
// against the number of rule evaluations; it never changes rule semantics,
// only which pairs get scored.
//
// Implementations may emit duplicate pairs and self pairs (same ID on both
// sides, as in dedup setups where A and B are one source); CandidatePairs
// removes both. Strategies are registered in BlockerByName for CLI and
// bench wiring.
type Blocker interface {
	// Name identifies the strategy in benches, tables and CLI flags.
	Name() string
	// Pairs proposes candidate pairs for A×B. Duplicates are allowed.
	Pairs(a, b *entity.Source, opts Options) []Pair
}

// CandidatePairs runs a blocker and returns its candidate pairs with
// duplicates and self pairs removed, in first-seen order. Memory is
// O(total candidates): materializing the deduplicated list is what lets
// multi-pass blockers union passes and MatchParallel partition work
// evenly, at the cost of the streaming per-entity footprint the token
// matcher alone would need. Keep Options.MaxBlockSize finite on large
// text-heavy sources.
func CandidatePairs(bl Blocker, a, b *entity.Source, opts Options) []Pair {
	opts.normalize(b.Len())
	raw := bl.Pairs(a, b, opts)
	seen := make(map[Pair]struct{}, len(raw))
	out := make([]Pair, 0, len(raw))
	for _, p := range raw {
		if p.A.ID == p.B.ID {
			continue
		}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

// ---------------------------------------------------------------------------
// Block-size cap policy

// CapAllows is the single block-size cap policy shared by every
// candidate-generation path — the batch blockers, the incremental
// indexes of internal/linkindex, and the streaming enumerators: a key
// block is admitted iff the cap is unlimited (maxBlock ≤ 0) or the
// number of *other* entities in the block — the block size measured
// without the probe's own record — does not exceed the cap. A block is
// never truncated to the cap: picking which members survive truncation
// would depend on enumeration order and could not be reproduced by a
// streaming path, so an oversized block is skipped whole (stop-token
// suppression). Measuring without the probe keeps the decision stable
// between dedup-shaped batch runs (where the probe is itself indexed)
// and online probes against a corpus that excludes it: a block exactly
// at the cap must not flip to skipped just because the probe is a
// member. TestCapPolicySharedSurvivors pins that every path picks the
// same survivors.
func CapAllows(others, maxBlock int) bool {
	return maxBlock <= 0 || others <= maxBlock
}

// OthersInBlock returns the size of a materialized block excluding the
// probe's own record (matched by entity ID) — the quantity CapAllows
// measures. The membership scan only runs when excluding one record
// could change the cap decision, so the common cases stay O(1).
func OthersInBlock(block []*entity.Entity, probe *entity.Entity, maxBlock int) int {
	size := len(block)
	if maxBlock > 0 && size == maxBlock+1 {
		for _, c := range block {
			if c.ID == probe.ID {
				return size - 1
			}
		}
	}
	return size
}

// ---------------------------------------------------------------------------
// Token blocking

// TokenBlocker generates a candidate for every pair sharing at least one
// lowercased value token, skipping tokens whose block exceeds
// Options.MaxBlockSize (stop-token suppression). This is the repo's
// original blocking strategy: high pairs-completeness, but frequent tokens
// make it generate many more candidates than window- or q-gram-based
// strategies on text-heavy sources.
type TokenBlocker struct{}

// TokenBlocking returns the token blocking strategy (the default).
func TokenBlocking() Blocker { return TokenBlocker{} }

// Name implements Blocker.
func (TokenBlocker) Name() string { return "token" }

// Pairs implements Blocker using the inverted token index.
func (TokenBlocker) Pairs(a, b *entity.Source, opts Options) []Pair {
	idx := BuildIndex(b)
	var out []Pair
	for _, ea := range a.Entities {
		for _, eb := range idx.Candidates(ea, opts.MaxBlockSize) {
			out = append(out, Pair{A: ea, B: eb})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Sorted neighborhood

// SortedNeighborhoodBlocker sorts the union of both sources by a
// normalized key and pairs every A entity with the B entities within
// Window positions of it in the sorted order (Hernández & Stolfo's
// sorted-neighborhood method). Candidate count is O((|A|+|B|)·Window)
// regardless of value frequency skew, so it generates far fewer pairs
// than token blocking on text-heavy sources — at the price of missing
// matches whose keys sort far apart. Run several passes with different
// keys via MultiPass to recover them (the MultiBlock idea).
type SortedNeighborhoodBlocker struct {
	// Window is how far apart two entities may sit in the sorted order
	// and still become a candidate pair (default 10).
	Window int
	// Key derives the sort key of an entity (default DefaultSortKey).
	// PropertySortKey builds keys over specific similarity dimensions.
	Key func(*entity.Entity) string
	// Label, when set, replaces the key description in Name().
	Label string
}

// SortedNeighborhood returns a sorted-neighborhood blocker with the given
// window (≤0 means the default of 10) over the default sort key.
func SortedNeighborhood(window int) Blocker {
	return SortedNeighborhoodBlocker{Window: window}
}

// Name implements Blocker.
func (s SortedNeighborhoodBlocker) Name() string {
	if s.Label != "" {
		return fmt.Sprintf("sortedneighborhood(w=%d,%s)", s.window(), s.Label)
	}
	return fmt.Sprintf("sortedneighborhood(w=%d)", s.window())
}

func (s SortedNeighborhoodBlocker) window() int {
	if s.Window <= 0 {
		return 10
	}
	return s.Window
}

// DefaultSortKey is the sort key used when SortedNeighborhoodBlocker.Key
// is nil: every lowercased token of every property value, sorted and
// joined. Sorting the tokens (rather than concatenating values in schema
// order) keeps the key comparable across sources with different property
// names — matching entities get near-identical keys no matter how their
// values are split into properties.
func DefaultSortKey(e *entity.Entity) string {
	toks := Tokens(e)
	sort.Strings(toks)
	return strings.Join(toks, " ")
}

// PropertySortKey returns a sort key reading the first value of the first
// set property among props, lowercased with whitespace collapsed. Keying a
// sorted-neighborhood pass on one similarity dimension — naming the A-side
// and B-side property of that dimension — is how MultiPass realizes the
// MultiBlock idea of one index per dimension.
func PropertySortKey(props ...string) func(*entity.Entity) string {
	return func(e *entity.Entity) string {
		for _, p := range props {
			if vs := e.Values(p); len(vs) > 0 {
				return strings.Join(strings.Fields(strings.ToLower(vs[0])), " ")
			}
		}
		return ""
	}
}

// ReversedKey wraps a sort key so entities sort by the reversed key
// string. A second sorted-neighborhood pass over reversed keys catches
// pairs whose keys diverge near the start (a typo in the first characters
// moves an entity arbitrarily far in forward sort order but barely at all
// in reverse order when the tail agrees).
func ReversedKey(key func(*entity.Entity) string) func(*entity.Entity) string {
	return func(e *entity.Entity) string {
		runes := []rune(key(e))
		for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
			runes[i], runes[j] = runes[j], runes[i]
		}
		return string(runes)
	}
}

// Pairs implements Blocker with a windowed scan over the merged sort order.
func (s SortedNeighborhoodBlocker) Pairs(a, b *entity.Source, opts Options) []Pair {
	key := s.Key
	if key == nil {
		key = DefaultSortKey
	}
	type rec struct {
		key string
		e   *entity.Entity
		isA bool
	}
	recs := make([]rec, 0, len(a.Entities)+len(b.Entities))
	for _, e := range a.Entities {
		recs = append(recs, rec{key: key(e), e: e, isA: true})
	}
	for _, e := range b.Entities {
		recs = append(recs, rec{key: key(e), e: e, isA: false})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		return recs[i].e.ID < recs[j].e.ID
	})
	w := s.window()
	var out []Pair
	for i := range recs {
		hi := i + w
		if hi >= len(recs) {
			hi = len(recs) - 1
		}
		for j := i + 1; j <= hi; j++ {
			switch {
			case recs[i].isA && !recs[j].isA:
				out = append(out, Pair{A: recs[i].e, B: recs[j].e})
			case !recs[i].isA && recs[j].isA:
				out = append(out, Pair{A: recs[j].e, B: recs[i].e})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Q-gram blocking

// QGramBlocker indexes B by the character q-grams of its lowercased value
// tokens and proposes every pair sharing at least one q-gram, with the
// same per-block size cap as token blocking. Because a single typo leaves
// most q-grams of a token intact, it retains pairs that token blocking
// loses on typo-heavy datasets — at the cost of more candidates, since
// q-grams are shared far more widely than whole tokens.
type QGramBlocker struct {
	// Q is the gram length (≤0 means the default of 3). Tokens shorter
	// than Q are indexed whole.
	Q int
}

// QGramBlocking returns a q-gram blocker with gram length q (≤0 means 3).
func QGramBlocking(q int) Blocker { return QGramBlocker{Q: q} }

// Name implements Blocker.
func (g QGramBlocker) Name() string { return fmt.Sprintf("qgram(q=%d)", g.q()) }

func (g QGramBlocker) q() int {
	if g.Q <= 0 {
		return 3
	}
	return g.Q
}

// QGramsOf returns the character q-grams of one token (q ≤ 0 means 3).
// Tokens no longer than q are returned whole; empty tokens yield no grams
// at all — indexing the empty string as a blocking key would put every
// entity carrying any empty value into one giant block, and slicing
// assumptions downstream must never see "" (the guard the fuzz target
// FuzzQGramsOf pins). Grams are byte-based, matching the batch blocker: a
// multi-byte rune may be split across grams, which is harmless for
// blocking (both sides split identically).
func QGramsOf(tok string, q int) []string {
	return appendQGrams(nil, tok, q)
}

// appendQGrams appends the q-grams of tok to dst, letting callers that
// loop over many tokens reuse one buffer instead of allocating a gram
// slice per token.
func appendQGrams(dst []string, tok string, q int) []string {
	if q <= 0 {
		q = 3
	}
	if tok == "" {
		return dst
	}
	if len(tok) <= q {
		return append(dst, tok)
	}
	for i := 0; i+q <= len(tok); i++ {
		dst = append(dst, tok[i:i+q])
	}
	return dst
}

// QGramKeys returns the deduplicated q-grams of every token of e — the
// blocking keys of QGramBlocker, shared with the incremental q-gram index
// so batch and incremental candidates cannot diverge.
func QGramKeys(e *entity.Entity, q int) []string {
	var d dedup
	var buf []string
	for _, tok := range Tokens(e) {
		buf = appendQGrams(buf[:0], tok, q)
		for _, gram := range buf {
			d.add(gram)
		}
	}
	return d.out
}

// Pairs implements Blocker via an inverted q-gram index over B.
func (g QGramBlocker) Pairs(a, b *entity.Source, opts Options) []Pair {
	byGram := make(map[string][]*entity.Entity)
	for _, eb := range b.Entities {
		for _, gram := range QGramKeys(eb, g.q()) {
			byGram[gram] = append(byGram[gram], eb)
		}
	}
	var out []Pair
	for _, ea := range a.Entities {
		seen := make(map[*entity.Entity]struct{})
		for _, gram := range QGramKeys(ea, g.q()) {
			block := byGram[gram]
			if !CapAllows(OthersInBlock(block, ea, opts.MaxBlockSize), opts.MaxBlockSize) {
				continue
			}
			for _, eb := range block {
				if _, dup := seen[eb]; dup {
					continue
				}
				seen[eb] = struct{}{}
				out = append(out, Pair{A: ea, B: eb})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Multi-pass composite

// MultiPassBlocker unions the candidates of several strategies — the
// MultiBlock idea (Isele, Jentzsch & Bizer 2011) of indexing each
// similarity dimension separately so a pair survives blocking if any one
// dimension proposes it. Pairs-completeness is at least that of the best
// member; the candidate count is at most the sum of the members'.
type MultiPassBlocker struct {
	Passes []Blocker
}

// MultiPass composes blockers into a union. With no arguments it returns
// the default composite: token blocking, a sorted-neighborhood pass and a
// q-gram pass.
func MultiPass(passes ...Blocker) Blocker {
	if len(passes) == 0 {
		passes = []Blocker{TokenBlocking(), SortedNeighborhood(0), QGramBlocking(0)}
	}
	return MultiPassBlocker{Passes: passes}
}

// Name implements Blocker.
func (m MultiPassBlocker) Name() string {
	names := make([]string, len(m.Passes))
	for i, p := range m.Passes {
		names[i] = p.Name()
	}
	return "multipass(" + strings.Join(names, "+") + ")"
}

// Pairs implements Blocker by concatenating every pass's candidates;
// CandidatePairs dedupes the union.
func (m MultiPassBlocker) Pairs(a, b *entity.Source, opts Options) []Pair {
	var out []Pair
	for _, p := range m.Passes {
		out = append(out, p.Pairs(a, b, opts)...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Registry

// BlockerNames lists the selectable strategies in presentation order.
func BlockerNames() []string {
	return []string{"token", "sortedneighborhood", "qgram", "multipass"}
}

// RegistryName maps a blocker back to the BlockerByName name that
// reconstructs it, or "" when bl is not one of the registry's
// default-parameter strategies (custom windows, keys or compositions
// cannot be rebuilt from a name). Strategy names are compared via
// Blocker.Name, which encodes the distinguishing parameters, so e.g.
// SortedNeighborhood(4) correctly reports "" while SortedNeighborhood(0)
// reports "sortedneighborhood". Snapshot persistence (internal/linkindex)
// records this name so a restored index blocks identically.
func RegistryName(bl Blocker) string {
	if bl == nil {
		return ""
	}
	for _, name := range BlockerNames() {
		if b := BlockerByName(name); b != nil && b.Name() == bl.Name() {
			return name
		}
	}
	return ""
}

// BlockerByName resolves a strategy name (as listed by BlockerNames) to a
// Blocker with default parameters. It returns nil for unknown names.
func BlockerByName(name string) Blocker {
	switch name {
	case "token":
		return TokenBlocking()
	case "sortedneighborhood", "sorted", "sn":
		return SortedNeighborhood(0)
	case "qgram":
		return QGramBlocking(0)
	case "multipass", "multi":
		return MultiPass()
	default:
		return nil
	}
}
