package matching_test

import (
	"fmt"
	"sort"
	"testing"

	"genlink/internal/entity"
	"genlink/internal/linkindex"
	"genlink/internal/matching"
)

// TestCapPolicySharedSurvivors pins the shared block-size cap policy
// (CapAllows / OthersInBlock) and its regression case: a block of
// exactly MaxBlockSize+1 records that includes the probe's own record
// has MaxBlockSize *others* and must be admitted — the old per-path cap
// checks compared the raw block length and skipped it. Every
// candidate-generation path (batch blockers, streaming batch
// enumerators, the incremental indexes and their candidate streams) must
// pick the same survivors on both sides of the boundary.
func TestCapPolicySharedSurvivors(t *testing.T) {
	t.Run("CapAllows", func(t *testing.T) {
		cases := []struct {
			others, maxBlock int
			want             bool
		}{
			{0, -1, true}, {99, -1, true}, // negative cap: unlimited
			{0, 0, true}, {99, 0, true}, // zero cap: unlimited
			{2, 3, true}, {3, 3, true}, // at or under the cap
			{4, 3, false}, {100, 3, false}, // over the cap
			{0, 1, true}, {2, 1, false},
		}
		for _, c := range cases {
			if got := matching.CapAllows(c.others, c.maxBlock); got != c.want {
				t.Errorf("CapAllows(%d, %d) = %v, want %v", c.others, c.maxBlock, got, c.want)
			}
		}
	})

	t.Run("OthersInBlock", func(t *testing.T) {
		mk := func(n int) []*entity.Entity {
			block := make([]*entity.Entity, n)
			for i := range block {
				block[i] = entity.New(fmt.Sprintf("m%d", i))
			}
			return block
		}
		probe := entity.New("m0") // same ID as the first member
		outsider := entity.New("px")
		// The boundary case the whole policy exists for: cap+1 records,
		// probe among them.
		if got := matching.OthersInBlock(mk(4), probe, 3); got != 3 {
			t.Errorf("boundary block with probe: others = %d, want 3", got)
		}
		if got := matching.OthersInBlock(mk(4), outsider, 3); got != 4 {
			t.Errorf("boundary block without probe: others = %d, want 4", got)
		}
		// Away from the boundary the raw length is returned (the scan is
		// skipped) — the cap decision is unaffected, which is the property
		// that matters.
		if got := matching.OthersInBlock(mk(3), probe, 3); got != 3 {
			t.Errorf("under-cap block: others = %d, want 3", got)
		}
		if allowed := matching.CapAllows(matching.OthersInBlock(mk(5), probe, 3), 3); allowed {
			t.Error("block of cap+2 must stay skipped even when the probe is a member")
		}
		if got := matching.OthersInBlock(mk(4), probe, 0); got != 4 {
			t.Errorf("uncapped: others = %d, want raw length 4", got)
		}
	})

	// Integration: one token/q-gram block of exactly cap+1 records. A
	// dedup-shaped run (probe indexed) must keep it; an external probe
	// against the same corpus (cap+1 others) must skip it; one notch
	// tighter and everyone skips it.
	for _, bl := range []matching.Blocker{matching.TokenBlocking(), matching.QGramBlocking(3)} {
		t.Run(bl.Name(), func(t *testing.T) {
			const cap = 3
			members := make([]*entity.Entity, cap+1)
			src := entity.NewSource("block")
			for i := range members {
				members[i] = entity.New(fmt.Sprintf("s%d", i))
				members[i].Add("name", "shared")
				src.Add(members[i])
			}
			external := entity.New("px")
			external.Add("name", "shared")
			extSrc := entity.NewSource("ext")
			extSrc.Add(external)
			opts := matching.Options{Blocker: bl, MaxBlockSize: cap}

			wantPairs := make(map[string]struct{})
			for _, a := range members {
				for _, b := range members {
					if a.ID != b.ID {
						wantPairs[a.ID+"→"+b.ID] = struct{}{}
					}
				}
			}

			if got := pairKeySet(matching.CandidatePairs(bl, src, src, opts)); !equalKeySets(got, wantPairs) {
				t.Fatalf("dedup batch run: boundary block not fully admitted\n got %d pairs, want %d", len(got), len(wantPairs))
			}
			if got := streamPairKeySet(bl, src, src, opts); !equalKeySets(got, wantPairs) {
				t.Fatalf("dedup streamed run: boundary block not fully admitted\n got %d pairs, want %d", len(got), len(wantPairs))
			}
			if got := matching.CandidatePairs(bl, extSrc, src, opts); len(got) != 0 {
				t.Fatalf("external batch run: cap+1 others must be skipped, got %d pairs", len(got))
			}
			if got := streamPairKeySet(bl, extSrc, src, opts); len(got) != 0 {
				t.Fatalf("external streamed run: cap+1 others must be skipped, got %d pairs", len(got))
			}

			bi := linkindex.NewBlockIndex(bl)
			for _, e := range members {
				bi.Add(e)
			}
			wantCands := []string{"s1", "s2", "s3"}
			if got := candidateIDs(bi.Candidates(members[0], cap)); !equalIDSlices(got, wantCands) {
				t.Fatalf("incremental index: probe's boundary block skipped, got %v want %v", got, wantCands)
			}
			if got := candidateIDs(bi.Candidates(external, cap)); len(got) != 0 {
				t.Fatalf("incremental index: external probe admitted cap+1 others: %v", got)
			}
			cs, ok := bi.(linkindex.CandidateStreamer)
			if !ok {
				t.Fatalf("%T must stream", bi)
			}
			if got := streamIDs(cs.StreamCandidates(members[0], cap)); !equalIDSlices(got, wantCands) {
				t.Fatalf("candidate stream: probe's boundary block skipped, got %v want %v", got, wantCands)
			}
			if got := streamIDs(cs.StreamCandidates(external, cap)); len(got) != 0 {
				t.Fatalf("candidate stream: external probe admitted cap+1 others: %v", got)
			}

			// One notch tighter: the probe's own block now has cap+1
			// others for everyone, and every path must drop it.
			tight := cap - 1
			tightOpts := matching.Options{Blocker: bl, MaxBlockSize: tight}
			if got := matching.CandidatePairs(bl, src, src, tightOpts); len(got) != 0 {
				t.Fatalf("tightened cap: batch run still admitted %d pairs", len(got))
			}
			if got := streamPairKeySet(bl, src, src, tightOpts); len(got) != 0 {
				t.Fatalf("tightened cap: streamed run still admitted %d pairs", len(got))
			}
			if got := candidateIDs(bi.Candidates(members[0], tight)); len(got) != 0 {
				t.Fatalf("tightened cap: incremental index still admitted %v", got)
			}
			if got := streamIDs(cs.StreamCandidates(members[0], tight)); len(got) != 0 {
				t.Fatalf("tightened cap: candidate stream still admitted %v", got)
			}
		})
	}
}

func pairKeySet(ps []matching.Pair) map[string]struct{} {
	out := make(map[string]struct{}, len(ps))
	for _, p := range ps {
		out[p.A.ID+"→"+p.B.ID] = struct{}{}
	}
	return out
}

func streamPairKeySet(bl matching.Blocker, a, b *entity.Source, opts matching.Options) map[string]struct{} {
	out := make(map[string]struct{})
	matching.StreamPairs(bl, a, b, opts, func(p matching.Pair) {
		out[p.A.ID+"→"+p.B.ID] = struct{}{}
	})
	return out
}

func equalKeySets(a, b map[string]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func candidateIDs(es []*entity.Entity) []string {
	out := make([]string, 0, len(es))
	for _, e := range es {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

func streamIDs(st linkindex.CandidateStream) []string {
	defer st.Close()
	var out []string
	for {
		e, ok := st.Next()
		if !ok {
			sort.Strings(out)
			return out
		}
		out = append(out, e.ID)
	}
}

func equalIDSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
