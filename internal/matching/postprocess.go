package matching

import (
	"fmt"
	"io"
	"sort"

	"genlink/internal/rdf"
)

// FilterOneToOne reduces a scored link set to a one-to-one matching using
// greedy assignment by descending score: each source and each target
// entity appears in at most one link. This is the standard post-processing
// step when both sources are internally duplicate-free (as the paper's
// RDF datasets are, Section 6.1).
func FilterOneToOne(links []Link) []Link {
	sorted := append([]Link(nil), links...)
	sortLinks(sorted)
	usedA := make(map[string]bool)
	usedB := make(map[string]bool)
	out := make([]Link, 0, len(sorted))
	for _, l := range sorted {
		if usedA[l.AID] || usedB[l.BID] {
			continue
		}
		usedA[l.AID] = true
		usedB[l.BID] = true
		out = append(out, l)
	}
	return out
}

// TopKPerSource keeps at most k links per source entity (by score).
// k ≤ 0 keeps everything.
func TopKPerSource(links []Link, k int) []Link {
	if k <= 0 {
		return append([]Link(nil), links...)
	}
	sorted := append([]Link(nil), links...)
	sortLinks(sorted)
	count := make(map[string]int)
	out := make([]Link, 0, len(sorted))
	for _, l := range sorted {
		if count[l.AID] >= k {
			continue
		}
		count[l.AID]++
		out = append(out, l)
	}
	return out
}

// sameAsPredicate is the predicate Silk emits for accepted links.
const sameAsPredicate = "http://www.w3.org/2002/07/owl#sameAs"

// WriteSameAs serializes links as owl:sameAs N-Triples, the output format
// of the Silk Link Discovery Framework.
func WriteSameAs(w io.Writer, links []Link) error {
	triples := make([]rdf.Triple, 0, len(links))
	sorted := append([]Link(nil), links...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].AID != sorted[j].AID {
			return sorted[i].AID < sorted[j].AID
		}
		return sorted[i].BID < sorted[j].BID
	})
	for _, l := range sorted {
		triples = append(triples, rdf.Triple{
			Subject:   l.AID,
			Predicate: sameAsPredicate,
			Object:    l.BID,
		})
	}
	return rdf.Write(w, triples)
}

// WriteCSV serializes links as "idA,idB,score" rows.
func WriteCSV(w io.Writer, links []Link) error {
	if _, err := fmt.Fprintln(w, "idA,idB,score"); err != nil {
		return err
	}
	sorted := append([]Link(nil), links...)
	sortLinks(sorted)
	for _, l := range sorted {
		if _, err := fmt.Fprintf(w, "%s,%s,%.6f\n", l.AID, l.BID, l.Score); err != nil {
			return err
		}
	}
	return nil
}
