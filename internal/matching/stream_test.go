package matching

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"genlink/internal/entity"
)

// opaquePairBlocker hides its concrete type from newPairStreamer's
// type switch, forcing the materializing generic fallback.
type opaquePairBlocker struct{ Blocker }

// randomWordSource builds a source of n entities over a small shared
// vocabulary — enough value collisions to make blocks overlap, caps
// trigger and sorted-neighborhood windows crowd.
func randomWordSource(rng *rand.Rand, name string, n int) *entity.Source {
	vocab := []string{"data", "graph", "kernel", "network", "análisis", "query", "silk", "link", ""}
	src := entity.NewSource(name)
	for i := 0; i < n; i++ {
		e := entity.New(fmt.Sprintf("%s/%d", name, i))
		e.Add("label", vocab[rng.Intn(len(vocab))]+" "+vocab[rng.Intn(len(vocab))])
		if rng.Intn(2) == 0 {
			e.Add("title", vocab[rng.Intn(len(vocab))])
		}
		if rng.Intn(3) == 0 {
			e.Add("coord", fmt.Sprintf("%d %d", rng.Intn(5), rng.Intn(5)))
		}
		src.Add(e)
	}
	return src
}

// TestStreamPairsEqualCandidatePairs is the batch-layer differential:
// for every strategy (and an opaque one served by the generic fallback)
// and every cap, StreamPairs must yield exactly the CandidatePairs set —
// no extras, no omissions, no duplicates. Covers A=B dedup shape,
// disjoint sources, and a source with the same entity pointer listed
// twice.
func TestStreamPairsEqualCandidatePairs(t *testing.T) {
	blockers := append(allBlockers(), opaquePairBlocker{TokenBlocking()})
	for _, bl := range blockers {
		for _, maxBlock := range []int{-1, 0, 4} {
			t.Run(fmt.Sprintf("%s/cap=%d", bl.Name(), maxBlock), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(bl.Name()))*10 + int64(maxBlock)))
				a := randomWordSource(rng, "a", 30)
				b := randomWordSource(rng, "b", 25)
				// The same pointer twice in A: uniqueEntities must visit it
				// once, matching the batch path's Pair-level dedup.
				a.Add(a.Entities[0])
				opts := Options{Blocker: bl, MaxBlockSize: maxBlock}

				check := func(label string, a, b *entity.Source) {
					t.Helper()
					want := make(map[Pair]struct{})
					for _, p := range CandidatePairs(bl, a, b, opts) {
						want[p] = struct{}{}
					}
					got := make(map[Pair]struct{})
					StreamPairs(bl, a, b, opts, func(p Pair) {
						if _, dup := got[p]; dup {
							t.Fatalf("%s: StreamPairs yielded duplicate pair %s→%s", label, p.A.ID, p.B.ID)
						}
						got[p] = struct{}{}
					})
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: streamed pair set diverges from CandidatePairs: %d streamed vs %d materialized",
							label, len(got), len(want))
					}
				}
				check("a×b", a, b)
				check("dedup a×a", a, a)
			})
		}
	}
}

// TestMatchStreamModeEquivalence pins Options.Stream as a pure execution
// mode: Match and MatchParallel must return byte-identical link slices
// with and without it, for every strategy and cap.
func TestMatchStreamModeEquivalence(t *testing.T) {
	r := labelRule()
	for _, bl := range allBlockers() {
		for _, maxBlock := range []int{-1, 3} {
			t.Run(fmt.Sprintf("%s/cap=%d", bl.Name(), maxBlock), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(bl.Name())) + int64(maxBlock)))
				a := randomWordSource(rng, "a", 40)
				b := randomWordSource(rng, "b", 35)
				opts := Options{Blocker: bl, MaxBlockSize: maxBlock}
				streamOpts := opts
				streamOpts.Stream = true

				want := Match(r, a, b, opts)
				if got := Match(r, a, b, streamOpts); !reflect.DeepEqual(got, want) {
					t.Fatalf("Match stream mode diverges:\n got: %v\nwant: %v", got, want)
				}
				if got := MatchParallel(r, a, b, streamOpts, 3); !reflect.DeepEqual(got, want) {
					t.Fatalf("MatchParallel stream mode diverges:\n got: %v\nwant: %v", got, want)
				}
				if got := MatchParallel(r, a, b, streamOpts, 1); !reflect.DeepEqual(got, want) {
					t.Fatalf("single-worker MatchParallel stream mode diverges:\n got: %v\nwant: %v", got, want)
				}
			})
		}
	}
}
