package matching

import (
	"sort"
	"sync"

	"genlink/internal/entity"
	"genlink/internal/evalengine"
	"genlink/internal/rule"
)

// The streaming half of the blocking subsystem: instead of materializing
// the full deduplicated candidate list (CandidatePairs) before scoring,
// a pairStreamer enumerates one A entity's partners at a time, so batch
// matching holds O(per-entity candidates) instead of O(total candidates)
// and scoring can push the compiled rule's prefilter (a cheap sound
// upper bound on the pair's score) down into the enumeration. Both modes
// produce identical links; the differential test
// TestStreamPairsEqualCandidatePairs pins pair-set equality for every
// strategy and cap.

// pairStreamer enumerates a blocker's candidate partners one A entity at
// a time. Implementations are immutable after construction and safe for
// concurrent forA calls from multiple goroutines — that is what lets the
// streaming MatchParallel partition A entities across workers.
type pairStreamer interface {
	// forA calls yield once per distinct B partner of ea, with self
	// pairs (same entity ID) already removed — exactly the B sides of
	// ea's pairs in CandidatePairs.
	forA(ea *entity.Entity, yield func(eb *entity.Entity))
}

// newPairStreamer builds the streaming enumerator for a blocker: lazy
// per-entity probes of the same inverted indexes and sorted orders the
// batch passes build, or a materializing fallback for strategies it has
// never heard of. opts must already be normalized.
func newPairStreamer(bl Blocker, a, b *entity.Source, opts Options) pairStreamer {
	switch blk := bl.(type) {
	case TokenBlocker:
		return &tokenStreamer{idx: BuildIndex(b), maxBlock: opts.MaxBlockSize}
	case QGramBlocker:
		byGram := make(map[string][]*entity.Entity)
		for _, eb := range b.Entities {
			for _, gram := range QGramKeys(eb, blk.q()) {
				byGram[gram] = append(byGram[gram], eb)
			}
		}
		return &qgramStreamer{byGram: byGram, q: blk.q(), maxBlock: opts.MaxBlockSize}
	case SortedNeighborhoodBlocker:
		return newSNStreamer(blk, a, b)
	case MultiPassBlocker:
		members := make([]pairStreamer, len(blk.Passes))
		for i, p := range blk.Passes {
			members[i] = newPairStreamer(p, a, b, opts)
		}
		return &multiStreamer{members: members}
	default:
		return newGenericStreamer(bl, a, b, opts)
	}
}

// StreamPairs enumerates exactly the pairs CandidatePairs(bl, a, b,
// opts) returns — duplicates and self pairs removed — without ever
// materializing the global pair list. Pair order may differ from
// CandidatePairs (per-A-entity enumeration order instead of first-seen
// global order); the pair set is identical.
func StreamPairs(bl Blocker, a, b *entity.Source, opts Options, yield func(Pair)) {
	opts.normalize(b.Len())
	ps := newPairStreamer(bl, a, b, opts)
	for _, ea := range uniqueEntities(a.Entities) {
		ps.forA(ea, func(eb *entity.Entity) {
			yield(Pair{A: ea, B: eb})
		})
	}
}

// uniqueEntities drops repeated occurrences of the same entity pointer,
// keeping first-seen order — CandidatePairs deduplicates the pairs such
// repeats would produce, so the streaming enumeration must visit each A
// entity once. The copy is only taken when a repeat actually exists.
func uniqueEntities(es []*entity.Entity) []*entity.Entity {
	seen := make(map[*entity.Entity]struct{}, len(es))
	for i, e := range es {
		if _, dup := seen[e]; dup {
			out := make([]*entity.Entity, i, len(es))
			copy(out, es[:i])
			for _, e := range es[i:] {
				if _, dup := seen[e]; dup {
					continue
				}
				seen[e] = struct{}{}
				out = append(out, e)
			}
			return out
		}
		seen[e] = struct{}{}
	}
	return es
}

// matchStream is the Options.Stream form of Match: candidates are scored
// as blocking enumerates them, with the compiled rule's prefilter
// rejecting pairs whose score upper bound cannot reach the threshold
// before any distance is computed. opts must already be normalized.
func matchStream(r *rule.Rule, a, b *entity.Source, opts Options) []Link {
	ps := newPairStreamer(opts.Blocker, a, b, opts)
	links := streamChunk(evalengine.Compile(r).Scorer(), ps, uniqueEntities(a.Entities), opts.Threshold)
	sortLinks(links)
	return links
}

// streamChunk scores one chunk of A entities against the streamer —
// the per-worker unit of the streaming MatchParallel.
func streamChunk(scorer *evalengine.Scorer, ps pairStreamer, chunk []*entity.Entity, threshold float64) []Link {
	var links []Link
	for _, ea := range chunk {
		ps.forA(ea, func(eb *entity.Entity) {
			if scorer.Bound(ea, eb) < threshold {
				return // the pair cannot reach the threshold: skip scoring
			}
			if score := scorer.Score(ea, eb); score >= threshold {
				links = append(links, Link{AID: ea.ID, BID: eb.ID, Score: score})
			}
		})
	}
	return links
}

// matchParallelStream partitions A entities (not a materialized pair
// list — there is none) across workers over one shared immutable
// streamer. Per-entity candidate enumeration stays within one worker, so
// deduplication needs no cross-worker state. opts must be normalized.
func matchParallelStream(r *rule.Rule, a, b *entity.Source, opts Options, workers int) []Link {
	eas := uniqueEntities(a.Entities)
	if workers > len(eas) {
		workers = len(eas)
	}
	ps := newPairStreamer(opts.Blocker, a, b, opts)
	compiled := evalengine.Compile(r)
	if workers <= 1 {
		links := streamChunk(compiled.Scorer(), ps, eas, opts.Threshold)
		sortLinks(links)
		return links
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		links   []Link
		chunkSz = (len(eas) + workers - 1) / workers
	)
	for lo := 0; lo < len(eas); lo += chunkSz {
		hi := lo + chunkSz
		if hi > len(eas) {
			hi = len(eas)
		}
		wg.Add(1)
		go func(chunk []*entity.Entity) {
			defer wg.Done()
			local := streamChunk(compiled.Scorer(), ps, chunk, opts.Threshold)
			mu.Lock()
			links = append(links, local...)
			mu.Unlock()
		}(eas[lo:hi])
	}
	wg.Wait()
	sortLinks(links)
	return links
}

// ---------------------------------------------------------------------------
// Per-strategy streamers

// tokenStreamer probes the batch inverted token index per A entity.
type tokenStreamer struct {
	idx      *Index
	maxBlock int
}

func (s *tokenStreamer) forA(ea *entity.Entity, yield func(*entity.Entity)) {
	seen := make(map[*entity.Entity]struct{})
	for _, tok := range Tokens(ea) {
		block := s.idx.byToken[tok]
		if !CapAllows(OthersInBlock(block, ea, s.maxBlock), s.maxBlock) {
			continue
		}
		for _, eb := range block {
			if eb.ID == ea.ID {
				continue
			}
			if _, dup := seen[eb]; dup {
				continue
			}
			seen[eb] = struct{}{}
			yield(eb)
		}
	}
}

// qgramStreamer probes the batch inverted q-gram index per A entity.
type qgramStreamer struct {
	byGram   map[string][]*entity.Entity
	q        int
	maxBlock int
}

func (s *qgramStreamer) forA(ea *entity.Entity, yield func(*entity.Entity)) {
	seen := make(map[*entity.Entity]struct{})
	for _, gram := range QGramKeys(ea, s.q) {
		block := s.byGram[gram]
		if !CapAllows(OthersInBlock(block, ea, s.maxBlock), s.maxBlock) {
			continue
		}
		for _, eb := range block {
			if eb.ID == ea.ID {
				continue
			}
			if _, dup := seen[eb]; dup {
				continue
			}
			seen[eb] = struct{}{}
			yield(eb)
		}
	}
}

// snStreamRec is one record of the sorted-neighborhood streamer's merged
// order — the same (key, ID)-sorted interleaving of both sources the
// batch windowed scan walks.
type snStreamRec struct {
	key string
	e   *entity.Entity
	isA bool
}

// snStreamer answers per-A-entity windows over the merged sorted order.
// The batch scan emits the pair of positions (i, j), i < j ≤ i+w, when
// exactly one side is an A record; seen from one A record at position p
// that is every B record within w positions on either side — which is
// what forA walks, reproducing the batch pair set exactly (including its
// dependence on interleaved A records occupying window slots).
type snStreamer struct {
	recs   []snStreamRec
	posOfA map[*entity.Entity][]int
	window int
}

func newSNStreamer(blk SortedNeighborhoodBlocker, a, b *entity.Source) *snStreamer {
	key := blk.Key
	if key == nil {
		key = DefaultSortKey
	}
	recs := make([]snStreamRec, 0, len(a.Entities)+len(b.Entities))
	for _, e := range a.Entities {
		recs = append(recs, snStreamRec{key: key(e), e: e, isA: true})
	}
	for _, e := range b.Entities {
		recs = append(recs, snStreamRec{key: key(e), e: e, isA: false})
	}
	sortSNStreamRecs(recs)
	pos := make(map[*entity.Entity][]int)
	for i, r := range recs {
		if r.isA {
			pos[r.e] = append(pos[r.e], i)
		}
	}
	return &snStreamer{recs: recs, posOfA: pos, window: blk.window()}
}

// sortSNStreamRecs orders records by (key, entity ID) — the exact order
// of the batch windowed scan, so window contents agree position for
// position.
func sortSNStreamRecs(recs []snStreamRec) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		return recs[i].e.ID < recs[j].e.ID
	})
}

func (s *snStreamer) forA(ea *entity.Entity, yield func(*entity.Entity)) {
	seen := make(map[*entity.Entity]struct{})
	for _, p := range s.posOfA[ea] {
		lo := p - s.window
		if lo < 0 {
			lo = 0
		}
		hi := p + s.window
		if hi > len(s.recs)-1 {
			hi = len(s.recs) - 1
		}
		for q := lo; q <= hi; q++ {
			if q == p {
				continue
			}
			r := s.recs[q]
			if r.isA || r.e.ID == ea.ID {
				continue
			}
			if _, dup := seen[r.e]; dup {
				continue
			}
			seen[r.e] = struct{}{}
			yield(r.e)
		}
	}
}

// multiStreamer unions member streamers with per-A-entity dedup — the
// streaming mirror of MultiPassBlocker + CandidatePairs dedup (with the
// A entity fixed, deduplicating pairs is deduplicating B partners).
type multiStreamer struct {
	members []pairStreamer
}

func (s *multiStreamer) forA(ea *entity.Entity, yield func(*entity.Entity)) {
	seen := make(map[*entity.Entity]struct{})
	for _, m := range s.members {
		m.forA(ea, func(eb *entity.Entity) {
			if _, dup := seen[eb]; dup {
				return
			}
			seen[eb] = struct{}{}
			yield(eb)
		})
	}
}

// genericStreamer is the fallback for unknown strategies: it runs the
// batch blocker once at construction and serves the deduplicated pairs
// grouped per A entity. Correct for any Blocker, but the memory the
// streaming mode exists to avoid is paid anyway — mirror new strategies
// in newPairStreamer to stream them for real.
type genericStreamer struct {
	byA map[*entity.Entity][]*entity.Entity
}

func newGenericStreamer(bl Blocker, a, b *entity.Source, opts Options) *genericStreamer {
	byA := make(map[*entity.Entity][]*entity.Entity)
	for _, p := range CandidatePairs(bl, a, b, opts) {
		byA[p.A] = append(byA[p.A], p.B)
	}
	return &genericStreamer{byA: byA}
}

func (s *genericStreamer) forA(ea *entity.Entity, yield func(*entity.Entity)) {
	for _, eb := range s.byA[ea] {
		yield(eb)
	}
}
