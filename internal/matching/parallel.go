package matching

import (
	"runtime"
	"sync"

	"genlink/internal/entity"
	"genlink/internal/rule"
)

// MatchParallel is Match with the source entities partitioned across
// workers (≤0 means GOMAXPROCS). Results are identical to Match: rule
// evaluation is pure and the combined link list is re-sorted.
func MatchParallel(r *rule.Rule, a, b *entity.Source, opts Options, workers int) []Link {
	opts.normalize(b.Len())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(a.Entities) {
		workers = len(a.Entities)
	}
	if workers <= 1 {
		return Match(r, a, b, opts)
	}
	idx := BuildIndex(b)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		links   []Link
		chunkSz = (len(a.Entities) + workers - 1) / workers
	)
	for w := 0; w < workers; w++ {
		lo := w * chunkSz
		hi := lo + chunkSz
		if hi > len(a.Entities) {
			hi = len(a.Entities)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(chunk []*entity.Entity) {
			defer wg.Done()
			var local []Link
			for _, ea := range chunk {
				for _, eb := range idx.Candidates(ea, opts.MaxBlockSize) {
					if ea.ID == eb.ID {
						continue
					}
					if score := r.Evaluate(ea, eb); score >= opts.Threshold {
						local = append(local, Link{AID: ea.ID, BID: eb.ID, Score: score})
					}
				}
			}
			mu.Lock()
			links = append(links, local...)
			mu.Unlock()
		}(a.Entities[lo:hi])
	}
	wg.Wait()
	sortLinks(links)
	return links
}
