package matching

import (
	"runtime"
	"sync"

	"genlink/internal/entity"
	"genlink/internal/evalengine"
	"genlink/internal/rule"
)

// MatchParallel is Match with the candidate pairs partitioned across
// workers (≤0 means GOMAXPROCS). Partitioning the deduplicated pair list
// — rather than the source entities — keeps every worker busy during
// scoring even when blocking is skewed: one giant block no longer
// serializes on the worker that owns its source entities. Candidate
// generation itself still runs serially before the fan-out, so the
// speedup applies to rule evaluation — the dominant cost for learned
// rules with several transformations and comparisons, though not for a
// trivial single-comparison rule, where blocking dominates and workers
// add little. Results are identical to Match: rule evaluation is pure
// and the combined link list is re-sorted.
func MatchParallel(r *rule.Rule, a, b *entity.Source, opts Options, workers int) []Link {
	opts.normalize(b.Len())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Stream {
		return matchParallelStream(r, a, b, opts, workers)
	}
	pairs := CandidatePairs(opts.Blocker, a, b, opts)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		links := scorePairs(r, pairs, opts.Threshold)
		sortLinks(links)
		return links
	}

	// The rule compiles once; each worker scores its chunk through its own
	// Scorer (per-entity value caches are not synchronized) over the
	// shared immutable program.
	compiled := evalengine.Compile(r)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		links   []Link
		chunkSz = (len(pairs) + workers - 1) / workers
	)
	for lo := 0; lo < len(pairs); lo += chunkSz {
		hi := lo + chunkSz
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(chunk []Pair) {
			defer wg.Done()
			local := scorePairsWith(compiled.Scorer(), chunk, opts.Threshold)
			mu.Lock()
			links = append(links, local...)
			mu.Unlock()
		}(pairs[lo:hi])
	}
	wg.Wait()
	sortLinks(links)
	return links
}
