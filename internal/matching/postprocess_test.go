package matching

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFilterOneToOne(t *testing.T) {
	links := []Link{
		{AID: "a1", BID: "b1", Score: 0.9},
		{AID: "a1", BID: "b2", Score: 0.8}, // a1 already used
		{AID: "a2", BID: "b1", Score: 0.7}, // b1 already used
		{AID: "a2", BID: "b2", Score: 0.6},
	}
	got := FilterOneToOne(links)
	want := []Link{
		{AID: "a1", BID: "b1", Score: 0.9},
		{AID: "a2", BID: "b2", Score: 0.6},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FilterOneToOne = %v", got)
	}
}

func TestFilterOneToOnePrefersHigherScore(t *testing.T) {
	links := []Link{
		{AID: "a1", BID: "b1", Score: 0.6},
		{AID: "a2", BID: "b1", Score: 0.9},
	}
	got := FilterOneToOne(links)
	if len(got) != 1 || got[0].AID != "a2" {
		t.Fatalf("greedy assignment should pick the higher score: %v", got)
	}
}

// Property: the filtered set is one-to-one and a subset of the input.
func TestFilterOneToOneProperty(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }) bool {
		links := make([]Link, len(pairs))
		for i, p := range pairs {
			links[i] = Link{
				AID:   string(rune('a' + p.A%16)),
				BID:   string(rune('A' + p.B%16)),
				Score: float64(i%10) / 10,
			}
		}
		out := FilterOneToOne(links)
		seenA := make(map[string]bool)
		seenB := make(map[string]bool)
		for _, l := range out {
			if seenA[l.AID] || seenB[l.BID] {
				return false
			}
			seenA[l.AID] = true
			seenB[l.BID] = true
		}
		return len(out) <= len(links)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKPerSource(t *testing.T) {
	links := []Link{
		{AID: "a1", BID: "b1", Score: 0.9},
		{AID: "a1", BID: "b2", Score: 0.8},
		{AID: "a1", BID: "b3", Score: 0.7},
		{AID: "a2", BID: "b4", Score: 0.5},
	}
	got := TopKPerSource(links, 2)
	if len(got) != 3 {
		t.Fatalf("TopK(2) = %v", got)
	}
	for _, l := range got {
		if l.AID == "a1" && l.BID == "b3" {
			t.Fatal("third link for a1 should be dropped")
		}
	}
	if got := TopKPerSource(links, 0); len(got) != 4 {
		t.Fatal("k=0 should keep everything")
	}
}

func TestWriteSameAs(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSameAs(&buf, []Link{
		{AID: "http://a/1", BID: "http://b/1", Score: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "<http://a/1> <http://www.w3.org/2002/07/owl#sameAs> <http://b/1> .\n"
	if buf.String() != want {
		t.Fatalf("sameAs output = %q", buf.String())
	}
}

func TestWriteCSVLinks(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Link{{AID: "a1", BID: "b1", Score: 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a1,b1,0.750000") {
		t.Fatalf("csv output = %q", buf.String())
	}
}

func TestPostprocessEmptyLinks(t *testing.T) {
	if got := FilterOneToOne(nil); len(got) != 0 {
		t.Fatalf("FilterOneToOne(nil) = %v", got)
	}
	if got := FilterOneToOne([]Link{}); len(got) != 0 {
		t.Fatalf("FilterOneToOne(empty) = %v", got)
	}
	if got := TopKPerSource(nil, 3); len(got) != 0 {
		t.Fatalf("TopKPerSource(nil, 3) = %v", got)
	}
	if got := TopKPerSource(nil, 0); len(got) != 0 {
		t.Fatalf("TopKPerSource(nil, 0) = %v", got)
	}
	var buf bytes.Buffer
	if err := WriteSameAs(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("WriteSameAs(nil): err=%v out=%q", err, buf.String())
	}
}

func TestFilterOneToOneTieBreaksByID(t *testing.T) {
	// Equal scores: the sort falls back to ascending AID then BID, so a1
	// must claim b1 and a2 is left with b2 — deterministically.
	links := []Link{
		{AID: "a2", BID: "b1", Score: 0.8},
		{AID: "a1", BID: "b1", Score: 0.8},
		{AID: "a2", BID: "b2", Score: 0.8},
	}
	want := []Link{
		{AID: "a1", BID: "b1", Score: 0.8},
		{AID: "a2", BID: "b2", Score: 0.8},
	}
	for i := 0; i < 5; i++ {
		if got := FilterOneToOne(links); !reflect.DeepEqual(got, want) {
			t.Fatalf("tie-break not deterministic: %v", got)
		}
	}
}

func TestFilterOneToOneDoesNotMutateInput(t *testing.T) {
	links := []Link{
		{AID: "a2", BID: "b2", Score: 0.5},
		{AID: "a1", BID: "b1", Score: 0.9},
	}
	orig := append([]Link(nil), links...)
	FilterOneToOne(links)
	if !reflect.DeepEqual(links, orig) {
		t.Fatalf("input reordered: %v", links)
	}
}

func TestTopKPerSourceTieBreaksByID(t *testing.T) {
	// Three equal-score links for a1: TopK(2) must keep the two with the
	// smallest BIDs, not an arbitrary pair.
	links := []Link{
		{AID: "a1", BID: "b3", Score: 0.7},
		{AID: "a1", BID: "b1", Score: 0.7},
		{AID: "a1", BID: "b2", Score: 0.7},
	}
	got := TopKPerSource(links, 2)
	want := []Link{
		{AID: "a1", BID: "b1", Score: 0.7},
		{AID: "a1", BID: "b2", Score: 0.7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK tie-break = %v", got)
	}
}

func TestTopKPerSourceNegativeKKeepsEverything(t *testing.T) {
	links := []Link{{AID: "a1", BID: "b1", Score: 0.9}}
	if got := TopKPerSource(links, -1); len(got) != 1 {
		t.Fatalf("TopK(-1) = %v", got)
	}
}

func TestMatchParallelMatchesSerial(t *testing.T) {
	a, b := citySources(40)
	serial := Match(labelRule(), a, b, Options{})
	parallel := MatchParallel(labelRule(), a, b, Options{}, 4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel match differs: %d vs %d links", len(serial), len(parallel))
	}
	single := MatchParallel(labelRule(), a, b, Options{}, 1)
	if !reflect.DeepEqual(serial, single) {
		t.Fatal("workers=1 should equal serial")
	}
	auto := MatchParallel(labelRule(), a, b, Options{}, 0)
	if !reflect.DeepEqual(serial, auto) {
		t.Fatal("workers=0 (auto) should equal serial")
	}
}
