package matching

import (
	"fmt"
	"reflect"
	"testing"

	"genlink/internal/entity"
	"genlink/internal/rule"
	"genlink/internal/similarity"
	"genlink/internal/transform"
)

func allBlockers() []Blocker {
	return []Blocker{
		TokenBlocking(),
		SortedNeighborhood(0),
		QGramBlocking(0),
		MultiPass(),
	}
}

// Every strategy's links must be a subset of the cartesian links at the
// same threshold: blocking may only drop pairs, never invent or rescore.
func TestBlockerLinksSubsetOfCartesian(t *testing.T) {
	a, b := citySources(40)
	exact := MatchCartesian(labelRule(), a, b, Options{})
	inExact := make(map[Link]bool, len(exact))
	for _, l := range exact {
		inExact[l] = true
	}
	for _, bl := range allBlockers() {
		t.Run(bl.Name(), func(t *testing.T) {
			links := Match(labelRule(), a, b, Options{Blocker: bl})
			for _, l := range links {
				if !inExact[l] {
					t.Fatalf("blocker invented link %v absent from cartesian", l)
				}
			}
		})
	}
}

func TestCandidatePairsDedupAndSelfPairs(t *testing.T) {
	src := entity.NewSource("s")
	e1 := entity.New("e1")
	e1.Add("label", "alpha beta")
	e2 := entity.New("e2")
	e2.Add("label", "alpha beta") // shares two tokens with e1 → duplicate raw pairs
	src.Add(e1)
	src.Add(e2)
	pairs := CandidatePairs(TokenBlocking(), src, src, Options{MaxBlockSize: -1})
	if len(pairs) != 2 { // e1→e2 and e2→e1; self pairs removed, dupes collapsed
		t.Fatalf("pairs = %d, want 2: %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.A.ID == p.B.ID {
			t.Fatalf("self pair survived: %v", p)
		}
	}
}

func TestSortedNeighborhoodFindsAdjacentKeys(t *testing.T) {
	a, b := citySources(30)
	pairs := CandidatePairs(SortedNeighborhood(4), a, b, Options{})
	found := make(map[string]bool)
	for _, p := range pairs {
		if p.A.ID[2:] == p.B.ID[2:] {
			found[p.A.ID] = true
		}
	}
	if len(found) != 30 {
		t.Fatalf("sorted neighborhood lost %d/30 true pairs", 30-len(found))
	}
	// Candidate count is bounded by (|A|+|B|)·window, unlike token blocking.
	if max := (30 + 30) * 4; len(pairs) > max {
		t.Fatalf("pairs = %d, want ≤ %d", len(pairs), max)
	}
}

func TestSortedNeighborhoodCustomKey(t *testing.T) {
	a := entity.NewSource("a")
	ea := entity.New("a1")
	ea.Add("name", "Berlin")
	ea.Add("junk", "zzzz")
	a.Add(ea)
	b := entity.NewSource("b")
	eb := entity.New("b1")
	eb.Add("name", "berlin")
	eb.Add("junk", "aaaa")
	b.Add(eb)
	bl := SortedNeighborhoodBlocker{Window: 1, Key: func(e *entity.Entity) string {
		if vs := e.Values("name"); len(vs) > 0 {
			return vs[0]
		}
		return ""
	}}
	pairs := CandidatePairs(bl, a, b, Options{})
	if len(pairs) != 1 {
		t.Fatalf("custom-key pairs = %d, want 1", len(pairs))
	}
}

func TestQGramSurvivesTypos(t *testing.T) {
	// A typo changes the token, so token blocking cannot block on it, but
	// most 3-grams survive.
	a := entity.NewSource("a")
	ea := entity.New("a1")
	ea.Add("label", "expressive")
	a.Add(ea)
	b := entity.NewSource("b")
	eb := entity.New("b1")
	eb.Add("label", "expresive") // dropped one 's'
	b.Add(eb)
	if pairs := CandidatePairs(TokenBlocking(), a, b, Options{MaxBlockSize: -1}); len(pairs) != 0 {
		t.Fatalf("token blocking should miss the typo pair, got %v", pairs)
	}
	if pairs := CandidatePairs(QGramBlocking(3), a, b, Options{MaxBlockSize: -1}); len(pairs) != 1 {
		t.Fatalf("qgram pairs = %d, want 1", len(pairs))
	}
}

func TestQGramShortTokensIndexedWhole(t *testing.T) {
	a := entity.NewSource("a")
	ea := entity.New("a1")
	ea.Add("label", "ab")
	a.Add(ea)
	b := entity.NewSource("b")
	eb := entity.New("b1")
	eb.Add("label", "ab")
	b.Add(eb)
	if pairs := CandidatePairs(QGramBlocking(3), a, b, Options{MaxBlockSize: -1}); len(pairs) != 1 {
		t.Fatalf("short-token pairs = %d, want 1", len(pairs))
	}
}

func TestMultiPassUnionsCandidates(t *testing.T) {
	// One pair only token blocking finds (identical rare token, keys sort
	// far apart) and one only q-gram finds (typo): the composite finds both.
	a := entity.NewSource("a")
	b := entity.NewSource("b")
	tok := entity.New("a/tok")
	tok.Add("label", "aardvark xylophone88")
	a.Add(tok)
	tokB := entity.New("b/tok")
	tokB.Add("label", "zebra xylophone88")
	b.Add(tokB)
	typo := entity.New("a/typo")
	typo.Add("label", "mississippi")
	a.Add(typo)
	typoB := entity.New("b/typo")
	typoB.Add("label", "missisippi")
	b.Add(typoB)
	opts := Options{MaxBlockSize: -1}
	bl := MultiPass(TokenBlocking(), SortedNeighborhoodBlocker{Window: 1}, QGramBlocking(3))
	pairs := CandidatePairs(bl, a, b, opts)
	want := map[[2]string]bool{
		{"a/tok", "b/tok"}:   false,
		{"a/typo", "b/typo"}: false,
	}
	for _, p := range pairs {
		key := [2]string{p.A.ID, p.B.ID}
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for key, ok := range want {
		if !ok {
			t.Fatalf("multipass missed %v (got %d pairs)", key, len(pairs))
		}
	}
}

func TestMultiPassDefaultComposite(t *testing.T) {
	bl := MultiPass()
	mp, ok := bl.(MultiPassBlocker)
	if !ok || len(mp.Passes) != 3 {
		t.Fatalf("default MultiPass should have 3 passes, got %#v", bl)
	}
}

func TestBlockerByName(t *testing.T) {
	for _, name := range BlockerNames() {
		if BlockerByName(name) == nil {
			t.Fatalf("BlockerByName(%q) = nil", name)
		}
	}
	if BlockerByName("nope") != nil {
		t.Fatal("unknown name should resolve to nil")
	}
}

func TestMatchWithEachBlockerIsDeterministic(t *testing.T) {
	a, b := citySources(25)
	for _, name := range BlockerNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			opts := Options{Blocker: BlockerByName(name)}
			l1 := Match(labelRule(), a, b, opts)
			l2 := Match(labelRule(), a, b, opts)
			if !reflect.DeepEqual(l1, l2) {
				t.Fatal("match output not deterministic")
			}
		})
	}
}

func TestMatchParallelPartitionsPairsEvenly(t *testing.T) {
	// A pathological skew: every entity shares one huge block. Under
	// entity partitioning one worker used to own the whole block; pair
	// partitioning must still produce identical results.
	a := entity.NewSource("a")
	b := entity.NewSource("b")
	for i := 0; i < 60; i++ {
		ea := entity.New(fmt.Sprint("a", i))
		ea.Add("label", fmt.Sprintf("shared item%02d", i))
		a.Add(ea)
		eb := entity.New(fmt.Sprint("b", i))
		eb.Add("label", fmt.Sprintf("shared item%02d", i))
		b.Add(eb)
	}
	r := rule.New(rule.NewComparison(
		rule.NewTransform(transform.LowerCase(), rule.NewProperty("label")),
		rule.NewTransform(transform.LowerCase(), rule.NewProperty("label")),
		similarity.Levenshtein(), 0.5))
	opts := Options{MaxBlockSize: -1}
	serial := Match(r, a, b, opts)
	for _, workers := range []int{2, 4, 7} {
		if got := MatchParallel(r, a, b, opts, workers); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d differs: %d vs %d links", workers, len(got), len(serial))
		}
	}
}

// TestRegistryName pins the blocker → registry-name inverse that snapshot
// persistence depends on: every registry default round-trips, and
// parameterized variants (which a bare name could not rebuild) map to "".
func TestRegistryName(t *testing.T) {
	for _, name := range BlockerNames() {
		if got := RegistryName(BlockerByName(name)); got != name {
			t.Fatalf("RegistryName(BlockerByName(%q)) = %q", name, got)
		}
	}
	for _, bl := range []Blocker{
		SortedNeighborhood(4),
		QGramBlocking(2),
		MultiPass(TokenBlocking()),
		SortedNeighborhoodBlocker{Window: 3, Key: PropertySortKey("name"), Label: "name"},
	} {
		if got := RegistryName(bl); got != "" {
			t.Fatalf("RegistryName(%s) = %q, want \"\" for non-default strategy", bl.Name(), got)
		}
	}
	if got := RegistryName(nil); got != "" {
		t.Fatalf("RegistryName(nil) = %q, want \"\"", got)
	}
}
