module genlink

go 1.24
