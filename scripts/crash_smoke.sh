#!/usr/bin/env bash
# Crash-recovery smoke test for genlinkd's -wal-dir mode: start the
# server, write entities over HTTP, SIGKILL it mid-flight (no graceful
# shutdown, no final snapshot), restart it on the same WAL directory and
# assert the acknowledged state — corpus size and a match answer —
# survived. Run from the repository root; CI runs it on every push.
set -euo pipefail

ADDR="${GENLINKD_SMOKE_ADDR:-127.0.0.1:18099}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
WAL_DIR="$WORK/wal"
BIN="$WORK/genlinkd"
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "crash_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server at $BASE never became healthy"
}

# A hand-built rule: lowercased names by levenshtein.
cat > "$WORK/rule.json" <<'EOF'
{
  "kind": "comparison", "function": "levenshtein", "threshold": 2,
  "children": [
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]},
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]}
  ]
}
EOF

go build -o "$BIN" ./cmd/genlinkd

echo "crash_smoke: first boot"
"$BIN" -rule "$WORK/rule.json" -addr "$ADDR" -wal-dir "$WAL_DIR" -fsync batch &
PID=$!
wait_healthy

curl -fsS -X POST "$BASE/entities" -d '[
  {"id":"a","properties":{"name":["Grace Hopper"]}},
  {"id":"b","properties":{"name":["grace hoper"]}},
  {"id":"c","properties":{"name":["Alan Turing"]}},
  {"id":"d","properties":{"name":["Ada Lovelace"]}}
]' >/dev/null
curl -fsS -X DELETE "$BASE/entities/d" >/dev/null

entities=$(curl -fsS "$BASE/stats" | jq -r .entities)
[ "$entities" = "3" ] || fail "pre-crash corpus = $entities, want 3"
match=$(curl -fsS "$BASE/match?id=a&k=5" | jq -r '.links[0].id')
[ "$match" = "b" ] || fail "pre-crash match of a = $match, want b"
records=$(curl -fsS "$BASE/metrics" | jq -r .wal_records)
[ "$records" = "2" ] || fail "pre-crash wal_records = $records, want 2"

echo "crash_smoke: kill -9 $PID"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "crash_smoke: restart on the same -wal-dir"
"$BIN" -rule "$WORK/rule.json" -addr "$ADDR" -wal-dir "$WAL_DIR" -fsync batch &
PID=$!
wait_healthy

entities=$(curl -fsS "$BASE/stats" | jq -r .entities)
[ "$entities" = "3" ] || fail "post-crash corpus = $entities, want 3 (a,b,c)"
match=$(curl -fsS "$BASE/match?id=a&k=5" | jq -r '.links[0].id')
[ "$match" = "b" ] || fail "post-crash match of a = $match, want b"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/entities/d")
[ "$code" = "404" ] || fail "deleted entity d answered $code after recovery, want 404"
recovery_ms=$(curl -fsS "$BASE/metrics" | jq -r .last_recovery_ms)
awk "BEGIN{exit !($recovery_ms > 0)}" || fail "last_recovery_ms = $recovery_ms, want > 0"

# The recovered server keeps taking durable writes.
curl -fsS -X POST "$BASE/entities" -d '{"id":"e","properties":{"name":["John McCarthy"]}}' >/dev/null
records=$(curl -fsS "$BASE/metrics" | jq -r .wal_records)
[ "$records" = "3" ] || fail "post-recovery wal_records = $records, want 3"

kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""
echo "crash_smoke: OK (recovered 3 entities, match answer intact, recovery ${recovery_ms}ms)"
