#!/usr/bin/env bash
# Sanity gate over scripts/*.sh, run by CI alongside genlint: every
# script must parse (bash -n), be executable, and fail fast with
# `set -euo pipefail` — a smoke script that shrugs off a failed curl or
# a dead pipeline reports green on a broken service, which is worse
# than no smoke test at all.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for f in scripts/*.sh; do
  if ! bash -n "$f"; then
    echo "$f: syntax error" >&2
    fail=1
  fi
  if ! grep -qE '^set -euo pipefail' "$f"; then
    echo "$f: missing 'set -euo pipefail' (scripts must fail fast)" >&2
    fail=1
  fi
  if [ ! -x "$f" ]; then
    echo "$f: not executable (chmod +x)" >&2
    fail=1
  fi
done
exit "$fail"
