#!/usr/bin/env bash
# Backfill-barrier smoke test for genlinkd's bulk-load mode: start the
# server on a WAL directory, write one logged entity, stream a backfill
# load through POST /entities?backfill=1 (unlogged), SIGKILL before the
# commit and assert the restart recovers the pre-backfill state (logged
# write intact, backfill gone); then load again, POST /backfill/commit,
# SIGKILL, and assert the whole load survived the barrier. Run from the
# repository root; CI runs it on every push.
set -euo pipefail

ADDR="${GENLINKD_SMOKE_ADDR:-127.0.0.1:18098}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
WAL_DIR="$WORK/wal"
BIN="$WORK/genlinkd"
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "backfill_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server at $BASE never became healthy"
}

start_server() {
  "$BIN" -rule "$WORK/rule.json" -addr "$ADDR" -wal-dir "$WAL_DIR" -fsync batch &
  PID=$!
  wait_healthy
}

crash_server() {
  kill -9 "$PID"
  wait "$PID" 2>/dev/null || true
  PID=""
}

# A hand-built rule: lowercased names by levenshtein.
cat > "$WORK/rule.json" <<'EOF'
{
  "kind": "comparison", "function": "levenshtein", "threshold": 2,
  "children": [
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]},
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]}
  ]
}
EOF

go build -o "$BIN" ./cmd/genlinkd

echo "backfill_smoke: first boot"
start_server

# One logged write: its durability must survive the discarded backfill.
curl -fsS -X POST "$BASE/entities" \
  -d '{"id":"logged","properties":{"name":["Grace Hopper"]}}' >/dev/null

# An unlogged backfill load: visible immediately, durable:false, no WAL
# records beyond the logged write.
durable=$(curl -fsS -X POST "$BASE/entities?backfill=1" -d '[
  {"id":"bf1","properties":{"name":["Alan Turing"]}},
  {"id":"bf2","properties":{"name":["alan turing"]}},
  {"id":"bf3","properties":{"name":["Ada Lovelace"]}}
]' | jq -r .durable)
[ "$durable" = "false" ] || fail "backfill response durable = $durable, want false"
entities=$(curl -fsS "$BASE/stats" | jq -r .entities)
[ "$entities" = "4" ] || fail "mid-backfill corpus = $entities, want 4"
records=$(curl -fsS "$BASE/metrics" | jq -r .wal_records)
[ "$records" = "1" ] || fail "backfill leaked into the WAL: wal_records = $records, want 1"
active=$(curl -fsS "$BASE/metrics" | jq -r .backfill_active)
[ "$active" = "true" ] || fail "backfill_active = $active, want true"

echo "backfill_smoke: kill -9 before the commit barrier"
crash_server

echo "backfill_smoke: restart — must recover the pre-backfill state"
start_server
entities=$(curl -fsS "$BASE/stats" | jq -r .entities)
[ "$entities" = "1" ] || fail "pre-barrier crash recovered $entities entities, want 1 (logged only)"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/entities/bf1")
[ "$code" = "404" ] || fail "uncommitted backfill entity bf1 answered $code, want 404"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/entities/logged")
[ "$code" = "200" ] || fail "logged entity answered $code after recovery, want 200"

# Load again and commit: the snapshot barrier makes it durable.
curl -fsS -X POST "$BASE/entities?backfill=1" -d '[
  {"id":"bf1","properties":{"name":["Alan Turing"]}},
  {"id":"bf2","properties":{"name":["alan turing"]}},
  {"id":"bf3","properties":{"name":["Ada Lovelace"]}}
]' >/dev/null
committed=$(curl -fsS -X POST "$BASE/backfill/commit" | jq -r .committed)
[ "$committed" = "3" ] || fail "commit reported $committed entities, want 3"
active=$(curl -fsS "$BASE/metrics" | jq -r .backfill_active)
[ "$active" = "false" ] || fail "backfill_active = $active after commit, want false"

echo "backfill_smoke: kill -9 after the commit barrier"
crash_server

echo "backfill_smoke: restart — must recover the whole load"
start_server
entities=$(curl -fsS "$BASE/stats" | jq -r .entities)
[ "$entities" = "4" ] || fail "post-barrier crash recovered $entities entities, want 4"
match=$(curl -fsS "$BASE/match?id=bf1&k=5" | jq -r '.links[0].id')
[ "$match" = "bf2" ] || fail "post-barrier match of bf1 = $match, want bf2"

crash_server
echo "backfill_smoke: OK (pre-barrier crash dropped the load, post-barrier crash kept all 4 entities)"
