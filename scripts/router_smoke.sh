#!/usr/bin/env bash
# Routing-tier smoke test with real processes: 2 partition groups, each
# a durable leader plus a WAL-shipping follower, behind a genlinkd
# -route router. Writes go through the router and land on the owning
# partitions; reads come back through the fan-out path; then SIGKILL
# one partition's leader, POST /promote on its follower and verify the
# router retargets writes to the new leader and reads stay correct.
# Run from the repository root; CI runs it on every push.
set -euo pipefail

L0_ADDR="${GENLINKD_SMOKE_L0_ADDR:-127.0.0.1:18290}"
F0_ADDR="${GENLINKD_SMOKE_F0_ADDR:-127.0.0.1:18291}"
L1_ADDR="${GENLINKD_SMOKE_L1_ADDR:-127.0.0.1:18292}"
F1_ADDR="${GENLINKD_SMOKE_F1_ADDR:-127.0.0.1:18293}"
RT_ADDR="${GENLINKD_SMOKE_RT_ADDR:-127.0.0.1:18294}"
L0="http://$L0_ADDR"; F0="http://$F0_ADDR"
L1="http://$L1_ADDR"; F1="http://$F1_ADDR"
RT="http://$RT_ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/genlinkd"
PIDS=()
L0_PID=""

cleanup() {
  for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "router_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server at $1 never became healthy"
}

# wait_applied <base> <seq>: poll until the node reports applied_seq ≥ seq.
wait_applied() {
  for _ in $(seq 1 100); do
    applied=$(curl -fsS "$1/metrics" | jq -r .applied_seq)
    if [ "$applied" -ge "$2" ]; then return 0; fi
    sleep 0.1
  done
  fail "node at $1 stuck at applied_seq $applied, want ≥ $2"
}

# A hand-built rule: lowercased names by levenshtein.
cat > "$WORK/rule.json" <<'EOF'
{
  "kind": "comparison", "function": "levenshtein", "threshold": 2,
  "children": [
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]},
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]}
  ]
}
EOF

go build -o "$BIN" ./cmd/genlinkd

echo "router_smoke: 2 partition leaders + followers up"
"$BIN" -rule "$WORK/rule.json" -addr "$L0_ADDR" -wal-dir "$WORK/p0-leader" -fsync batch &
L0_PID=$!; PIDS+=("$L0_PID")
"$BIN" -rule "$WORK/rule.json" -addr "$L1_ADDR" -wal-dir "$WORK/p1-leader" -fsync batch &
PIDS+=("$!")
wait_healthy "$L0"; wait_healthy "$L1"
"$BIN" -follow "$L0" -addr "$F0_ADDR" -wal-dir "$WORK/p0-follower" -fsync batch &
PIDS+=("$!")
"$BIN" -follow "$L1" -addr "$F1_ADDR" -wal-dir "$WORK/p1-follower" -fsync batch &
PIDS+=("$!")
wait_healthy "$F0"; wait_healthy "$F1"

echo "router_smoke: router up"
"$BIN" -route "$L0,$F0;$L1,$F1" -addr "$RT_ADDR" -max-lag 0 -hedge-after 250ms -route-poll 100ms &
PIDS+=("$!")
wait_healthy "$RT"

# Write a small corpus through the router; the split must land every
# entity on exactly one partition and the totals must add up.
curl -fsS -X POST "$RT/entities" -d '[
  {"id":"a","properties":{"name":["Grace Hopper"]}},
  {"id":"b","properties":{"name":["grace hoper"]}},
  {"id":"c","properties":{"name":["Alan Turing"]}},
  {"id":"d","properties":{"name":["Ada Lovelace"]}},
  {"id":"e","properties":{"name":["alan turing"]}},
  {"id":"f","properties":{"name":["John McCarthy"]}}
]' >/dev/null
total=$(curl -fsS "$RT/stats" | jq -r .entities)
[ "$total" = "6" ] || fail "routed corpus = $total, want 6"
p0=$(curl -fsS "$L0/stats" | jq -r .entities)
p1=$(curl -fsS "$L1/stats" | jq -r .entities)
[ "$((p0 + p1))" = "6" ] || fail "partition split $p0+$p1 != 6"
[ "$p0" -ge 1 ] && [ "$p1" -ge 1 ] || fail "degenerate split $p0/$p1"

# Fan-out top-k through the router finds the cross-checked duplicate
# regardless of which partition holds it.
match=$(curl -fsS "$RT/match?id=a&k=5" | jq -r '.links[0].id')
[ "$match" = "b" ] || fail "routed match of a = $match, want b"
match=$(curl -fsS "$RT/match?id=c&k=5" | jq -r '.links[0].id')
[ "$match" = "e" ] || fail "routed match of c = $match, want e"

# Let the followers converge so replica reads are eligible under -max-lag 0.
wait_applied "$F0" "$(curl -fsS "$L0/metrics" | jq -r .applied_seq)"
wait_applied "$F1" "$(curl -fsS "$L1/metrics" | jq -r .applied_seq)"

echo "router_smoke: kill -9 partition 0 leader, promote its follower"
kill -9 "$L0_PID"
wait "$L0_PID" 2>/dev/null || true

promoted_role=$(curl -fsS -X POST "$F0/promote" | jq -r .role)
[ "$promoted_role" = "leader" ] || fail "promote answered role $promoted_role"

# The router must retarget partition 0 writes to the promoted follower
# (via the poll loop or a 403 redirect) without a restart. Retry while
# the router notices the dead leader.
wrote=""
for _ in $(seq 1 50); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$RT/entities" \
    -d '{"id":"g","properties":{"name":["Barbara Liskov"]}}')
  if [ "$code" = "200" ]; then wrote=yes; break; fi
  sleep 0.2
done
[ "$wrote" = "yes" ] || fail "router never recovered writes after promote"

# Reads through the router stay correct across both partitions.
total=$(curl -fsS "$RT/stats" | jq -r .entities)
[ "$total" = "7" ] || fail "post-promote routed corpus = $total, want 7"
match=$(curl -fsS "$RT/match?id=a&k=5" | jq -r '.links[0].id')
[ "$match" = "b" ] || fail "post-promote match of a = $match, want b"
got=$(curl -fsS "$RT/entities/g" | jq -r .id)
[ "$got" = "g" ] || fail "post-promote get of g answered $got"

# The router's own metrics expose the recovery.
retargets=$(curl -fsS "$RT/metrics" | jq -r .retargets)
[ "$retargets" -ge 0 ] || fail "router metrics missing retargets"
writes=$(curl -fsS "$RT/metrics" | jq -r '.routed_writes | add')
[ "$writes" = "7" ] || fail "router routed_writes total = $writes, want 7"

echo "router_smoke: OK (split writes, fan-out reads, promote recovery, $retargets retargets)"
