#!/usr/bin/env bash
# Replication smoke test for genlinkd's -follow mode with real
# processes: start a leader, attach a follower, write entities to the
# leader and assert bounded lag on the follower's reads; then SIGKILL
# the leader, POST /promote on the follower and verify it accepts
# durable writes as the new leader. Run from the repository root; CI
# runs it on every push.
set -euo pipefail

LEADER_ADDR="${GENLINKD_SMOKE_LEADER_ADDR:-127.0.0.1:18199}"
FOLLOWER_ADDR="${GENLINKD_SMOKE_FOLLOWER_ADDR:-127.0.0.1:18198}"
LEADER="http://$LEADER_ADDR"
FOLLOWER="http://$FOLLOWER_ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/genlinkd"
LEADER_PID=""
FOLLOWER_PID=""

cleanup() {
  [ -n "$LEADER_PID" ] && kill -9 "$LEADER_PID" 2>/dev/null || true
  [ -n "$FOLLOWER_PID" ] && kill -9 "$FOLLOWER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "replication_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server at $1 never became healthy"
}

# wait_applied <base> <seq>: poll until the node reports applied_seq ≥ seq.
wait_applied() {
  for _ in $(seq 1 100); do
    applied=$(curl -fsS "$1/metrics" | jq -r .applied_seq)
    if [ "$applied" -ge "$2" ]; then return 0; fi
    sleep 0.1
  done
  fail "node at $1 stuck at applied_seq $applied, want ≥ $2"
}

# A hand-built rule: lowercased names by levenshtein.
cat > "$WORK/rule.json" <<'EOF'
{
  "kind": "comparison", "function": "levenshtein", "threshold": 2,
  "children": [
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]},
    {"kind": "transform", "function": "lowerCase",
     "children": [{"kind": "property", "property": "name"}]}
  ]
}
EOF

go build -o "$BIN" ./cmd/genlinkd

echo "replication_smoke: leader up"
"$BIN" -rule "$WORK/rule.json" -addr "$LEADER_ADDR" -wal-dir "$WORK/leader-wal" -fsync batch &
LEADER_PID=$!
wait_healthy "$LEADER"

curl -fsS -X POST "$LEADER/entities" -d '[
  {"id":"a","properties":{"name":["Grace Hopper"]}},
  {"id":"b","properties":{"name":["grace hoper"]}},
  {"id":"c","properties":{"name":["Alan Turing"]}}
]' >/dev/null

echo "replication_smoke: follower up"
"$BIN" -follow "$LEADER" -addr "$FOLLOWER_ADDR" -wal-dir "$WORK/follower-wal" -fsync batch &
FOLLOWER_PID=$!
wait_healthy "$FOLLOWER"

# Write more on the leader while the follower tails, then assert the
# follower converges to the leader's seq with bounded lag.
curl -fsS -X POST "$LEADER/entities" -d '{"id":"d","properties":{"name":["Ada Lovelace"]}}' >/dev/null
leader_seq=$(curl -fsS "$LEADER/metrics" | jq -r .applied_seq)
wait_applied "$FOLLOWER" "$leader_seq"

role=$(curl -fsS "$FOLLOWER/metrics" | jq -r .role)
[ "$role" = "follower" ] || fail "follower role = $role"
lag=$(curl -fsS "$FOLLOWER/metrics" | jq -r .replica_lag_records)
[ "$lag" -le 0 ] || fail "converged follower still lags $lag records"
entities=$(curl -fsS "$FOLLOWER/stats" | jq -r .entities)
[ "$entities" = "4" ] || fail "follower corpus = $entities, want 4"
match=$(curl -fsS "$FOLLOWER/match?id=a&k=5" | jq -r '.links[0].id')
[ "$match" = "b" ] || fail "follower match of a = $match, want b"

# Writes on the follower bounce with 403 naming the leader.
code=$(curl -s -o "$WORK/reject.json" -w '%{http_code}' -X POST "$FOLLOWER/entities" \
  -d '{"id":"x","properties":{"name":["nope"]}}')
[ "$code" = "403" ] || fail "write on follower answered $code, want 403"
leader_addr=$(jq -r .leader "$WORK/reject.json")
[ "$leader_addr" = "$LEADER" ] || fail "403 body names leader $leader_addr, want $LEADER"

echo "replication_smoke: kill -9 leader, promote follower"
kill -9 "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
LEADER_PID=""

promoted_role=$(curl -fsS -X POST "$FOLLOWER/promote" | jq -r .role)
[ "$promoted_role" = "leader" ] || fail "promote answered role $promoted_role"

# The promoted follower accepts writes and serves them.
curl -fsS -X POST "$FOLLOWER/entities" -d '{"id":"e","properties":{"name":["John McCarthy"]}}' >/dev/null
entities=$(curl -fsS "$FOLLOWER/stats" | jq -r .entities)
[ "$entities" = "5" ] || fail "post-promote corpus = $entities, want 5"
role=$(curl -fsS "$FOLLOWER/metrics" | jq -r .role)
[ "$role" = "leader" ] || fail "post-promote role = $role"

# The promoted node's writes are durable: SIGKILL and restart it as a
# plain leader on the same WAL directory.
kill -9 "$FOLLOWER_PID"
wait "$FOLLOWER_PID" 2>/dev/null || true
FOLLOWER_PID=""
"$BIN" -rule "$WORK/rule.json" -addr "$FOLLOWER_ADDR" -wal-dir "$WORK/follower-wal" -fsync batch &
FOLLOWER_PID=$!
wait_healthy "$FOLLOWER"
entities=$(curl -fsS "$FOLLOWER/stats" | jq -r .entities)
[ "$entities" = "5" ] || fail "restarted promoted node corpus = $entities, want 5"

kill -9 "$FOLLOWER_PID" 2>/dev/null || true
wait "$FOLLOWER_PID" 2>/dev/null || true
FOLLOWER_PID=""
echo "replication_smoke: OK (follower converged, promote flipped to leader, writes durable)"
