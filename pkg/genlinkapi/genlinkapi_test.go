package genlinkapi_test

import (
	"encoding/json"
	"strings"
	"testing"

	"genlink/pkg/genlinkapi"
)

func TestFacadeEndToEnd(t *testing.T) {
	ds := genlinkapi.Dataset("Restaurant", 1)
	if ds == nil {
		t.Fatal("Restaurant dataset missing")
	}
	cfg := genlinkapi.DefaultConfig()
	cfg.PopulationSize = 60
	cfg.MaxIterations = 8
	cfg.Seed = 3

	refs := &genlinkapi.ReferenceLinks{
		Positive: ds.Refs.Positive[:60],
		Negative: ds.Refs.Negative[:60],
	}
	res, err := genlinkapi.Learn(cfg, refs)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrainF1 < 0.9 {
		t.Fatalf("facade learning F1 = %v", res.BestTrainF1)
	}

	conf := genlinkapi.Evaluate(res.Best, refs)
	if conf.FMeasure() != res.BestTrainF1 {
		t.Fatalf("Evaluate disagrees with learner: %v vs %v", conf.FMeasure(), res.BestTrainF1)
	}

	// Rule serialization through the facade.
	data, err := json.Marshal(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	back, err := genlinkapi.ParseRuleJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Compact() != res.Best.Compact() {
		t.Fatal("rule did not survive facade round trip")
	}
}

func TestFacadeMatch(t *testing.T) {
	a := genlinkapi.NewSource("a")
	b := genlinkapi.NewSource("b")
	ea := genlinkapi.NewEntity("a1")
	ea.Add("name", "identical")
	a.Add(ea)
	eb := genlinkapi.NewEntity("b1")
	eb.Add("name", "identical")
	b.Add(eb)

	rule, err := genlinkapi.ParseRuleJSON([]byte(`{
		"kind":"comparison","function":"levenshtein","threshold":1,
		"children":[
			{"kind":"property","property":"name"},
			{"kind":"property","property":"name"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	links := genlinkapi.Match(rule, a, b, genlinkapi.MatchOptions{})
	if len(links) != 1 || links[0].AID != "a1" || links[0].BID != "b1" {
		t.Fatalf("links = %+v", links)
	}
}

func TestFacadeLoaders(t *testing.T) {
	src, err := genlinkapi.ReadCSV(strings.NewReader("id,name\nx1,Alice\n"), "csv", genlinkapi.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if src.Get("x1") == nil {
		t.Fatal("CSV loading failed")
	}
	nt, err := genlinkapi.ReadNTriples(strings.NewReader(
		`<http://x/e1> <http://x/name> "Alice" .`), "rdf")
	if err != nil {
		t.Fatal(err)
	}
	if nt.Get("http://x/e1") == nil {
		t.Fatal("N-Triples loading failed")
	}
	links, err := genlinkapi.ReadLinksCSV(strings.NewReader("a1,b1,1\n"))
	if err != nil || len(links) != 1 {
		t.Fatalf("links = %v, %v", links, err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if len(genlinkapi.DatasetNames()) != 6 {
		t.Fatal("expected six datasets")
	}
	if genlinkapi.Dataset("nope", 1) != nil {
		t.Fatal("unknown dataset should be nil")
	}
	pos := []genlinkapi.Pair{
		{A: genlinkapi.NewEntity("a1"), B: genlinkapi.NewEntity("b1")},
		{A: genlinkapi.NewEntity("a2"), B: genlinkapi.NewEntity("b2")},
	}
	if neg := genlinkapi.GenerateNegatives(pos); len(neg) != 2 {
		t.Fatalf("negatives = %d", len(neg))
	}
}

func TestFacadePRCurveAndPostprocess(t *testing.T) {
	rule, err := genlinkapi.ParseRuleJSON([]byte(`{
		"kind":"comparison","function":"levenshtein","threshold":1,
		"children":[
			{"kind":"property","property":"name"},
			{"kind":"property","property":"name"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	a := genlinkapi.NewEntity("a1")
	a.Add("name", "x")
	b := genlinkapi.NewEntity("b1")
	b.Add("name", "x")
	c := genlinkapi.NewEntity("b2")
	c.Add("name", "completely different")
	refs := &genlinkapi.ReferenceLinks{
		Positive: []genlinkapi.Pair{{A: a, B: b}},
		Negative: []genlinkapi.Pair{{A: a, B: c}},
	}
	points := genlinkapi.PRCurve(rule, refs)
	if len(points) == 0 {
		t.Fatal("empty PR curve")
	}
	links := []genlinkapi.MatchedLink{
		{AID: "a1", BID: "b1", Score: 0.9},
		{AID: "a1", BID: "b2", Score: 0.8},
	}
	if got := genlinkapi.FilterOneToOne(links); len(got) != 1 {
		t.Fatalf("one-to-one = %v", got)
	}
	var buf strings.Builder
	if err := genlinkapi.WriteSameAs(&buf, links); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "owl#sameAs") {
		t.Fatal("sameAs output missing predicate")
	}
}
