package genlinkapi_test

import (
	"fmt"
	"os"
	"path/filepath"

	"genlink/pkg/genlinkapi"
)

// Example walks the full workflow: build two sources under different
// schemas, resolve reference links, learn a linkage rule, evaluate it and
// execute it over the whole sources.
func Example() {
	a := genlinkapi.NewSource("crm")
	b := genlinkapi.NewSource("billing")
	people := []struct{ name, email string }{
		{"Alice Anderson", "alice@example.org"},
		{"Bob Baker", "bob@example.org"},
		{"Carol Clark", "carol@example.org"},
		{"Dan Dorsey", "dan@example.org"},
	}
	var links []genlinkapi.Link
	for i, p := range people {
		ea := genlinkapi.NewEntity(fmt.Sprintf("crm/%d", i))
		ea.Add("name", p.name)
		ea.Add("mail", p.email)
		a.Add(ea)
		eb := genlinkapi.NewEntity(fmt.Sprintf("billing/%d", i))
		eb.Add("fullName", p.name)
		eb.Add("contact", p.email)
		b.Add(eb)
		links = append(links, genlinkapi.Link{AID: ea.ID, BID: eb.ID, Match: true})
		// A negative link: everyone is distinct from their neighbor.
		links = append(links, genlinkapi.Link{
			AID: ea.ID, BID: fmt.Sprintf("billing/%d", (i+1)%len(people)), Match: false,
		})
	}
	refs, err := genlinkapi.Resolve(a, b, links)
	if err != nil {
		panic(err)
	}

	cfg := genlinkapi.DefaultConfig()
	cfg.PopulationSize = 50
	cfg.MaxIterations = 10
	cfg.Seed = 7
	result, err := genlinkapi.Learn(cfg, refs)
	if err != nil {
		panic(err)
	}

	conf := genlinkapi.Evaluate(result.Best, refs)
	fmt.Println("training F1 = 1:", conf.FMeasure() == 1)

	matched := genlinkapi.FilterOneToOne(
		genlinkapi.Match(result.Best, a, b, genlinkapi.MatchOptions{}))
	correct := 0
	for _, l := range matched {
		if l.AID[len("crm/"):] == l.BID[len("billing/"):] {
			correct++
		}
	}
	fmt.Printf("one-to-one links: %d, correct: %d\n", len(matched), correct)
	// Output:
	// training F1 = 1: true
	// one-to-one links: 4, correct: 4
}

// ExampleMatch executes a hand-written rule (parsed from its JSON
// serialization) over two sources, no learning involved. The two labels
// differ by a typo, so no whole token is shared and the default token
// blocking would never propose the pair — q-gram blocking does.
func ExampleMatch() {
	ruleJSON := `{
	  "kind": "comparison", "function": "levenshtein", "threshold": 2,
	  "children": [
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "label"}]},
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "name"}]}
	  ]}`
	r, err := genlinkapi.ParseRuleJSON([]byte(ruleJSON))
	if err != nil {
		panic(err)
	}
	a := genlinkapi.NewSource("a")
	berlin := genlinkapi.NewEntity("a/berlin")
	berlin.Add("label", "Berlin")
	a.Add(berlin)
	b := genlinkapi.NewSource("b")
	berlim := genlinkapi.NewEntity("b/berlim") // one edit away
	berlim.Add("name", "berlim")
	b.Add(berlim)
	opts := genlinkapi.MatchOptions{Blocker: genlinkapi.QGramBlocking(3)}
	for _, l := range genlinkapi.Match(r, a, b, opts) {
		fmt.Printf("%s -> %s (%.2f)\n", l.AID, l.BID, l.Score)
	}
	// Output:
	// a/berlin -> b/berlim (0.50)
}

// ExampleMultiPass compares how many candidate pairs each blocking
// strategy proposes before any rule is evaluated.
func ExampleMultiPass() {
	a := genlinkapi.NewSource("a")
	b := genlinkapi.NewSource("b")
	for i := 0; i < 4; i++ {
		ea := genlinkapi.NewEntity(fmt.Sprintf("a/%d", i))
		ea.Add("label", fmt.Sprintf("item number%d", i))
		a.Add(ea)
		eb := genlinkapi.NewEntity(fmt.Sprintf("b/%d", i))
		eb.Add("label", fmt.Sprintf("item number%d", i))
		b.Add(eb)
	}
	// MaxBlockSize -1 disables stop-token suppression: the shared "item"
	// token makes token blocking propose the full cross product.
	opts := genlinkapi.MatchOptions{MaxBlockSize: -1}
	for _, bl := range []genlinkapi.Blocker{
		genlinkapi.TokenBlocking(),
		genlinkapi.SortedNeighborhood(1),
		genlinkapi.MultiPass(genlinkapi.TokenBlocking(), genlinkapi.SortedNeighborhood(1)),
	} {
		pairs := genlinkapi.CandidatePairs(bl, a, b, opts)
		fmt.Printf("%s: %d pairs\n", bl.Name(), len(pairs))
	}
	// Output:
	// token: 16 pairs
	// sortedneighborhood(w=1): 7 pairs
	// multipass(token+sortedneighborhood(w=1)): 16 pairs
}

// ExampleFilterOneToOne reduces scored links to a one-to-one matching.
func ExampleFilterOneToOne() {
	links := []genlinkapi.MatchedLink{
		{AID: "a1", BID: "b1", Score: 0.9},
		{AID: "a1", BID: "b2", Score: 0.8},
		{AID: "a2", BID: "b1", Score: 0.7},
	}
	for _, l := range genlinkapi.FilterOneToOne(links) {
		fmt.Printf("%s -> %s\n", l.AID, l.BID)
	}
	// Output:
	// a1 -> b1
}

// ExampleDatasetNames lists the paper's six synthetic evaluation datasets.
func ExampleDatasetNames() {
	for _, name := range genlinkapi.DatasetNames() {
		fmt.Println(name)
	}
	// Output:
	// Cora
	// Restaurant
	// SiderDrugBank
	// NYT
	// LinkedMDB
	// DBpediaDrugBank
}

// ExampleNewEvalEngine shows engine-backed learning and evaluation: the
// learner always scores populations through the compiled evaluation
// engine (Config.Engine tunes or disables it), and a standalone engine
// memoizes across repeated evaluations of related rules — here the
// learned committee — against one link set.
func ExampleNewEvalEngine() {
	ds := genlinkapi.Dataset("LinkedMDB", 1)

	cfg := genlinkapi.DefaultConfig()
	cfg.PopulationSize = 60
	cfg.MaxIterations = 10
	cfg.Seed = 3
	// Engine options ride along in the config; the zero value means
	// "enabled with defaults". Disabled: true would fall back to the
	// interpreted tree-walk with identical results, just slower.
	cfg.Engine = genlinkapi.EngineOptions{KeepGenerations: 3}

	result, err := genlinkapi.Learn(cfg, ds.Refs)
	if err != nil {
		panic(err)
	}

	// Score the whole learned committee through one shared engine: rules
	// that reuse subtrees of the best rule hit its caches.
	eng := genlinkapi.NewEvalEngine(ds.Refs, genlinkapi.EngineOptions{})
	strong := 0
	for _, r := range result.TopRules {
		conf := genlinkapi.Confusion(eng.Evaluate(r))
		if conf.FMeasure() >= 0.9 {
			strong++
		}
	}
	fmt.Println("best rule F1 ≥ 0.95:", genlinkapi.Confusion(eng.Evaluate(result.Best)).FMeasure() >= 0.95)
	fmt.Println("committee has a strong rule:", strong >= 1)

	// The compiled engine and the interpreted tree-walk always agree.
	fmt.Println("engine ≡ tree-walk:",
		genlinkapi.Evaluate(result.Best, ds.Refs) == genlinkapi.EvaluateTreeWalk(result.Best, ds.Refs))
	// Output:
	// best rule F1 ≥ 0.95: true
	// committee has a strong rule: true
	// engine ≡ tree-walk: true
}

// ExampleNewIndex serves a linkage rule online: entities are added,
// updated and removed one at a time, and each Query matches a probe
// against the current corpus without re-blocking anything — the
// service-mode counterpart of Match (cmd/genlinkd wraps this in HTTP).
func ExampleNewIndex() {
	ruleJSON := `{
	  "kind": "comparison", "function": "levenshtein", "threshold": 2,
	  "children": [
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "name"}]},
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "name"}]}
	  ]
	}`
	r, err := genlinkapi.ParseRuleJSON([]byte(ruleJSON))
	if err != nil {
		panic(err)
	}

	// Q-gram blocking keeps typo'd duplicates reachable; the zero options
	// otherwise mean token blocking and the default match threshold.
	ix := genlinkapi.NewIndex(r, genlinkapi.MatchOptions{
		Blocker: genlinkapi.QGramBlocking(0),
	})

	add := func(id, name string) {
		e := genlinkapi.NewEntity(id)
		e.Add("name", name)
		ix.Add(e)
	}
	add("p1", "Grace Hopper")
	add("p2", "Grace Hoper") // a typo'd duplicate
	add("p3", "Alan Turing")

	// Match a stored entity against the rest of the corpus.
	links, _ := ix.QueryID("p1", 3)
	for _, l := range links {
		fmt.Printf("%s matches %s (score %.2f)\n", l.AID, l.BID, l.Score)
	}

	// Updates take effect immediately: fix the typo, then re-query.
	fixed := genlinkapi.NewEntity("p2")
	fixed.Add("name", "Grace Hopper")
	ix.Update(fixed)
	links, _ = ix.QueryID("p1", 3)
	fmt.Printf("after update: top score %.2f\n", links[0].Score)

	// Removal, too.
	ix.Remove("p2")
	links, _ = ix.QueryID("p1", 3)
	fmt.Println("after removal:", len(links), "matches, corpus size", ix.Len())
	// Output:
	// p1 matches p2 (score 0.50)
	// after update: top score 1.00
	// after removal: 0 matches, corpus size 2
}

// ExampleNewShardedIndex scales the online index: the corpus is
// hash-partitioned over shards that are written and queried
// independently, writes arrive in batches through Apply, and the whole
// index snapshots to disk and restores across restarts.
func ExampleNewShardedIndex() {
	ruleJSON := `{
	  "kind": "comparison", "function": "levenshtein", "threshold": 2,
	  "children": [
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "name"}]},
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "name"}]}
	  ]
	}`
	r, err := genlinkapi.ParseRuleJSON([]byte(ruleJSON))
	if err != nil {
		panic(err)
	}

	// Four hash partitions; token blocking is partition-invariant, so
	// queries answer exactly like a single-shard index.
	ix := genlinkapi.NewShardedIndex(r, 4, genlinkapi.MatchOptions{
		Blocker: genlinkapi.TokenBlocking(),
	})

	ent := func(id, name string) *genlinkapi.Entity {
		e := genlinkapi.NewEntity(id)
		e.Add("name", name)
		return e
	}
	// One batch through the write pipeline: each shard locks once,
	// deletes beat same-ID upserts, the last upsert of an ID wins.
	res := ix.Apply(genlinkapi.IndexBatch{
		Upserts: []*genlinkapi.Entity{
			ent("p1", "Grace Hopper"),
			ent("p2", "grace hopper"),
			ent("p3", "Alan Turing"),
		},
	})
	fmt.Printf("applied %d upserts, %d deletes; %d entities in %d shards\n",
		res.Upserted, res.Deleted, ix.Len(), ix.Stats().Shards)

	links, _ := ix.QueryID("p1", 3)
	for _, l := range links {
		fmt.Printf("%s matches %s (score %.2f)\n", l.AID, l.BID, l.Score)
	}

	// Persist and restore: the restored index answers identically.
	path := filepath.Join(os.TempDir(), "genlink-example.snap")
	defer os.Remove(path)
	if err := ix.SnapshotTo(path); err != nil {
		panic(err)
	}
	restored, err := genlinkapi.RestoreIndex(path, genlinkapi.IndexRestoreOptions{})
	if err != nil {
		panic(err)
	}
	again, _ := restored.QueryID("p1", 3)
	fmt.Printf("restored: %d entities, same top match %s (score %.2f)\n",
		restored.Len(), again[0].BID, again[0].Score)
	// Output:
	// applied 3 upserts, 0 deletes; 3 entities in 4 shards
	// p1 matches p2 (score 1.00)
	// restored: 3 entities, same top match p2 (score 1.00)
}

// ExampleOpenDurableIndex makes the index crash-safe: every mutation is
// write-ahead logged before it is applied, so a restart (or a crash)
// recovers the exact acknowledged state from the newest snapshot plus
// the log tail — build runs only on first boot.
func ExampleOpenDurableIndex() {
	ruleJSON := `{
	  "kind": "comparison", "function": "levenshtein", "threshold": 2,
	  "children": [
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "name"}]},
	    {"kind": "transform", "function": "lowerCase",
	     "children": [{"kind": "property", "property": "name"}]}
	  ]
	}`
	r, err := genlinkapi.ParseRuleJSON([]byte(ruleJSON))
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "genlink-durable-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	build := func() (*genlinkapi.Index, error) {
		return genlinkapi.NewShardedIndex(r, 2, genlinkapi.MatchOptions{
			Blocker: genlinkapi.TokenBlocking(),
		}), nil
	}
	opts := genlinkapi.DurableIndexOptions{Fsync: genlinkapi.FsyncBatch}

	// First boot: no durable state yet, build constructs the index.
	d, stats, err := genlinkapi.OpenDurableIndex(dir, build, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("first boot recovered:", stats.Recovered)
	ent := func(id, name string) *genlinkapi.Entity {
		e := genlinkapi.NewEntity(id)
		e.Add("name", name)
		return e
	}
	// Acknowledged means durable under FsyncBatch: the batch is fsynced
	// to the log before Apply returns.
	if _, err := d.Apply(genlinkapi.IndexBatch{Upserts: []*genlinkapi.Entity{
		ent("p1", "Grace Hopper"),
		ent("p2", "grace hopper"),
		ent("p3", "Alan Turing"),
	}}); err != nil {
		panic(err)
	}
	if _, err := d.Remove("p3"); err != nil {
		panic(err)
	}
	if err := d.Close(); err != nil {
		panic(err)
	}

	// Restart: the state comes back from snapshot + log replay.
	d, stats, err = genlinkapi.OpenDurableIndex(dir, build, opts)
	if err != nil {
		panic(err)
	}
	defer d.Close()
	fmt.Printf("restart recovered: %v (%d log records replayed)\n",
		stats.Recovered, stats.RecordsReplayed)
	links, _ := d.QueryID("p1", 3)
	fmt.Printf("%d entities survive; p1 matches %s (score %.2f)\n",
		d.Len(), links[0].BID, links[0].Score)
	// Output:
	// first boot recovered: false
	// restart recovered: true (2 log records replayed)
	// 2 entities survive; p1 matches p2 (score 1.00)
}
