// Package genlinkapi is the stable public facade of the GenLink library.
//
// It re-exports the pieces a downstream user needs to learn and execute
// expressive linkage rules:
//
//   - building data sources and reference links (entities, CSV, N-Triples)
//   - learning a linkage rule with the GenLink genetic programming
//     algorithm (Isele & Bizer, PVLDB 5(11), 2012)
//   - evaluating rules (precision, recall, F-measure, MCC) through a
//     compiled, memoizing evaluation engine (see NewEvalEngine)
//   - executing rules over whole sources with pluggable blocking
//     (token, sorted-neighborhood, q-gram, multi-pass), serial or parallel
//   - serving rules online over a mutable corpus: NewIndex returns an
//     incremental, concurrency-safe matching index with Add/Update/Remove
//     and top-k Query (see cmd/genlinkd for the HTTP server around it)
//   - the six synthetic evaluation datasets of the paper
//
// Quickstart:
//
//	ds := genlinkapi.Dataset("Restaurant", 1)
//	cfg := genlinkapi.DefaultConfig()
//	cfg.PopulationSize = 100
//	result, err := genlinkapi.Learn(cfg, ds.Refs)
//	fmt.Println(result.Best.Render())
package genlinkapi

import (
	"io"

	"genlink/internal/datagen"
	"genlink/internal/entity"
	"genlink/internal/evalengine"
	"genlink/internal/evalx"
	"genlink/internal/genlink"
	"genlink/internal/linkindex"
	"genlink/internal/linkrouter"
	"genlink/internal/matching"
	"genlink/internal/rdf"
	"genlink/internal/rule"
	"genlink/internal/tabular"
)

// Core data model.
type (
	// Entity is a record with multi-valued properties.
	Entity = entity.Entity
	// Source is a collection of entities.
	Source = entity.Source
	// Pair is an (a, b) entity pair.
	Pair = entity.Pair
	// Link is a reference link between entity ids.
	Link = entity.Link
	// ReferenceLinks bundles positive and negative reference links.
	ReferenceLinks = entity.ReferenceLinks
	// DataSet is a complete matching task.
	DataSet = entity.Dataset
)

// Rule representation.
type (
	// Rule is an expressive linkage rule (operator tree).
	Rule = rule.Rule
	// PropertyOp retrieves property values.
	PropertyOp = rule.PropertyOp
	// TransformOp applies a data transformation.
	TransformOp = rule.TransformOp
	// ComparisonOp compares two value operators.
	ComparisonOp = rule.ComparisonOp
	// AggregationOp combines similarity operators.
	AggregationOp = rule.AggregationOp
)

// Learner types.
type (
	// Config holds the GenLink parameters (Table 4 defaults).
	Config = genlink.Config
	// Result is a learning outcome.
	Result = genlink.Result
	// PropertyPair is a discovered compatible property pair.
	PropertyPair = genlink.PropertyPair
)

// Evaluation types.
type (
	// Confusion is a binary confusion matrix over reference links.
	Confusion = evalx.Confusion
	// EngineOptions tunes the compiled evaluation engine (cache sizes,
	// workers, on/off) — see Config.Engine and NewEvalEngine.
	EngineOptions = evalengine.Options
	// EvalEngine batch-evaluates rules over a fixed link set with
	// cross-generation memoization.
	EvalEngine = evalengine.Engine
	// EvalCounts is the engine's confusion count (convertible to
	// Confusion).
	EvalCounts = evalengine.Counts
	// CompiledRule is a rule compiled into flat programs, shareable across
	// goroutines.
	CompiledRule = evalengine.Compiled
	// RuleScorer scores entity pairs against a compiled rule with
	// per-entity value-set caching (one per goroutine).
	RuleScorer = evalengine.Scorer
)

// Matching types.
type (
	// MatchOptions tunes whole-source rule execution.
	MatchOptions = matching.Options
	// MatchedLink is a scored link produced by rule execution.
	MatchedLink = matching.Link
	// Blocker generates candidate pairs for rule execution; see
	// TokenBlocking, SortedNeighborhood, QGramBlocking and MultiPass.
	Blocker = matching.Blocker
	// CandidatePair is an entity pair proposed by a Blocker.
	CandidatePair = matching.Pair
)

// Incremental matching service types.
type (
	// Index is a mutable, concurrency-safe matching index over one entity
	// corpus: Add/Update/Remove entities online and Query for the top-k
	// matches of a probe entity, scored through the compiled rule engine.
	// Index is the single-shard case of the sharded storage layer; see
	// NewShardedIndex for hash-partitioned shards with parallel query
	// fan-out.
	Index = linkindex.Index
	// IndexStats summarizes an Index (corpus size, key entries, strategy,
	// shard count and per-shard sizes).
	IndexStats = linkindex.Stats
	// IndexBatch is one group of writes for Index.Apply: upserts plus
	// deletes, installed per shard under a single lock acquisition.
	IndexBatch = linkindex.Batch
	// IndexApplyResult counts the distinct upserts and deletes an
	// Index.Apply call performed.
	IndexApplyResult = linkindex.ApplyResult
	// IndexRestoreOptions tunes RestoreIndex (shard-count override, the
	// blocker to use when the snapshot's strategy is not a registry name).
	IndexRestoreOptions = linkindex.RestoreOptions
	// DurableIndex wraps an Index with a segmented write-ahead log and
	// auto-snapshot compaction: every mutation is logged before it is
	// applied, and recovery replays snapshot + log tail after a crash.
	DurableIndex = linkindex.DurableIndex
	// DurableIndexOptions tunes the log (fsync policy, segment size), the
	// auto-snapshot policy and recovery.
	DurableIndexOptions = linkindex.DurableOptions
	// DurableIndexMetrics is a point-in-time summary of the durability
	// subsystem (log records/segments, snapshot coverage).
	DurableIndexMetrics = linkindex.DurableMetrics
	// RecoveryStats reports what OpenDurableIndex recovery did (snapshot
	// loaded, records replayed, torn tail, duration).
	RecoveryStats = linkindex.RecoveryStats
	// FsyncPolicy selects when the write-ahead log makes acknowledged
	// writes durable: FsyncBatch, FsyncInterval or FsyncOff.
	FsyncPolicy = linkindex.FsyncPolicy
	// BackfillSession is an open bulk-ingest session on a DurableIndex
	// (DurableIndex.BeginBackfill): batches apply through the per-shard
	// parallel pipeline without write-ahead logging, and Commit makes the
	// whole load durable with one atomic snapshot barrier. A crash before
	// Commit recovers the pre-backfill state.
	BackfillSession = linkindex.Backfill
	// Follower tails a leader's WAL stream into a local durable index:
	// crash-safe read replica with manual Promote.
	Follower = linkindex.Follower
	// FollowerOptions configures OpenFollower (leader address, local
	// directory, durability tuning).
	FollowerOptions = linkindex.FollowerOptions
	// ReplicationStatus is a follower's point-in-time replication
	// standing (applied seq, leader seq, lag).
	ReplicationStatus = linkindex.ReplicationStatus
)

// ErrBackfillActive is returned by DurableIndex.Snapshot and
// DurableIndex.BeginBackfill while a backfill session is open.
var ErrBackfillActive = linkindex.ErrBackfillActive

// Write-ahead-log fsync policies, in decreasing durability order: fsync
// before acknowledging every batch; group-commit on a background
// interval; no explicit fsync (the OS page cache decides).
const (
	FsyncBatch    = linkindex.FsyncBatch
	FsyncInterval = linkindex.FsyncIntervalPolicy
	FsyncOff      = linkindex.FsyncOff
)

// NewEntity returns an entity with the given id.
func NewEntity(id string) *Entity { return entity.New(id) }

// NewSource returns an empty data source.
func NewSource(name string) *Source { return entity.NewSource(name) }

// Resolve materializes reference links against two sources.
func Resolve(a, b *Source, links []Link) (*ReferenceLinks, error) {
	return entity.Resolve(a, b, links)
}

// GenerateNegatives derives negative links by cross-pairing positives
// (Section 6.1 of the paper).
func GenerateNegatives(positive []Pair) []Pair {
	return entity.GenerateNegatives(positive)
}

// DefaultConfig returns the paper's Table 4 parameters.
func DefaultConfig() Config { return genlink.DefaultConfig() }

// Learn runs the GenLink algorithm on training links.
func Learn(cfg Config, train *ReferenceLinks) (*Result, error) {
	return genlink.NewLearner(cfg).Learn(train)
}

// LearnWithValidation additionally tracks validation F-measure per
// iteration.
func LearnWithValidation(cfg Config, train, val *ReferenceLinks) (*Result, error) {
	return genlink.NewLearner(cfg).LearnWithValidation(train, val)
}

// Evaluate computes the confusion matrix of a rule over reference links.
// Evaluation runs through the compiled engine; EvaluateTreeWalk is the
// interpreted reference implementation.
func Evaluate(r *Rule, refs *ReferenceLinks) Confusion {
	return evalx.Evaluate(r, refs)
}

// EvaluateTreeWalk computes the confusion matrix by interpreting the rule
// tree directly — the reference implementation the engine is
// differentially tested against.
func EvaluateTreeWalk(r *Rule, refs *ReferenceLinks) Confusion {
	return evalx.EvaluateTreeWalk(r, refs)
}

// NewEvalEngine returns a compiled evaluation engine over a fixed set of
// reference links. Callers that score many rules against the same links —
// hyper-parameter sweeps, active-learning committees — should reuse one
// engine so value sets and distances are memoized across calls:
//
//	eng := genlinkapi.NewEvalEngine(refs, genlinkapi.EngineOptions{})
//	for _, r := range rules {
//		conf := genlinkapi.Confusion(eng.Evaluate(r))
//		...
//	}
func NewEvalEngine(refs *ReferenceLinks, opts EngineOptions) *EvalEngine {
	return evalengine.New(refs, opts)
}

// CompileRule compiles a rule into flat post-order programs. The compiled
// form is immutable; derive one RuleScorer per goroutine with Scorer() to
// score arbitrary entity pairs with per-entity value-set caching.
func CompileRule(r *Rule) *CompiledRule { return evalengine.Compile(r) }

// Match executes a rule over two whole sources using the blocker selected
// in opts (token blocking by default).
func Match(r *Rule, a, b *Source, opts MatchOptions) []MatchedLink {
	return matching.Match(r, a, b, opts)
}

// MatchParallel is Match with the candidate pairs partitioned across
// workers (≤0 means GOMAXPROCS). Results are identical to Match.
func MatchParallel(r *Rule, a, b *Source, opts MatchOptions, workers int) []MatchedLink {
	return matching.MatchParallel(r, a, b, opts, workers)
}

// MatchCartesian executes a rule over the full cross product — exact but
// quadratic. It anchors blocking-quality measurements.
func MatchCartesian(r *Rule, a, b *Source, opts MatchOptions) []MatchedLink {
	return matching.MatchCartesian(r, a, b, opts)
}

// NewIndex returns an empty incremental matching index serving the given
// rule — the online counterpart of Match. Entities enter the corpus with
// Index.Add/Update/BulkLoad and leave with Index.Remove; Index.Query
// matches a probe against the current corpus and returns the top-k links
// without re-blocking anything. opts follows MatchOptions semantics (zero
// Threshold means the rule match threshold, nil Blocker means token
// blocking). All Index methods are safe for concurrent use; queries run
// concurrently and serialize only against writes.
//
// Incremental candidates are differentially tested to be identical to
// running the batch Blocker on the same surviving corpus, so switching a
// pipeline from Match to an Index changes latency, never semantics.
func NewIndex(r *Rule, opts MatchOptions) *Index {
	return linkindex.New(r, opts)
}

// NewShardedIndex returns an empty incremental matching index whose
// corpus is hash-partitioned over the given number of shards (≤ 0 means
// runtime.GOMAXPROCS(0)). Each shard holds its own block structures and
// scorer behind its own lock: writes to different shards proceed in
// parallel and never stall queries against the other shards, and queries
// fan out across shards concurrently, merging per-shard top-k results.
// NewIndex is the single-shard case of the same code path.
//
// Candidate semantics under sharding: identical to a single-shard Index
// for token and q-gram blocking without block-size caps; for
// sorted-neighborhood passes each shard applies the window to its own
// partition, which yields a superset of the single-shard candidates
// (recall never drops — a per-shard window of size w contains every
// in-shard entity of the global window). See the linkindex.ShardedIndex
// documentation for the full contract.
func NewShardedIndex(r *Rule, shards int, opts MatchOptions) *Index {
	return linkindex.NewSharded(r, shards, opts)
}

// RestoreIndex rebuilds an index from a snapshot file written by
// Index.SnapshotTo: the corpus, rule, options and shard count are
// restored and the block structures rebuilt, so queries against the
// restored index answer exactly like the snapshotted one.
func RestoreIndex(path string, o IndexRestoreOptions) (*Index, error) {
	return linkindex.RestoreFrom(path, o)
}

// OpenDurableIndex opens dir as a crash-safe index. When dir already
// holds durable state (snapshots, log segments) the state is recovered —
// newest valid snapshot plus log-tail replay, tolerating a torn final
// record — and build is not called. Otherwise build supplies the fresh
// index to wrap (so an expensive startup, like learning a rule, is paid
// only on first boot). Every mutation through the returned DurableIndex
// is write-ahead logged before it is applied; see FsyncBatch /
// FsyncInterval / FsyncOff for the durability trade-offs and
// DurableIndexOptions for the auto-snapshot + compaction policy.
func OpenDurableIndex(dir string, build func() (*Index, error), o DurableIndexOptions) (*DurableIndex, RecoveryStats, error) {
	return linkindex.OpenDurable(dir, build, o)
}

// FsyncPolicyByName resolves a flag value ("batch", "interval", "off")
// to its FsyncPolicy. It reports false for unknown names.
func FsyncPolicyByName(name string) (FsyncPolicy, bool) {
	return linkindex.FsyncPolicyByName(name)
}

// OpenFollower starts a WAL-shipping read replica of the leader named in
// o: with no local state it bootstraps from the leader's newest snapshot,
// otherwise it recovers locally (snapshot + log tail, torn tail
// tolerated) and re-tails from its last applied sequence number. The
// follower serves reads from Follower.Index and flips to a leader via
// Follower.Promote. The leader side is served by
// DurableIndex.ServeWALStream and DurableIndex.ServeWALSnapshot.
func OpenFollower(o FollowerOptions) (*Follower, error) {
	return linkindex.OpenFollower(o)
}

// Router is the scale-out routing tier: a stateless HTTP router that
// hash-partitions entity IDs across leader/replica partition groups,
// splits write batches per owning partition, fans match queries out to
// every group (lag-aware replica reads, hedged slow legs) and merges
// with the index's top-k contract. See internal/linkrouter.
type Router = linkrouter.Router

// RouterOptions configures NewRouter; Groups lists each partition
// group's nodes (first node is the initial leader guess).
type RouterOptions = linkrouter.Options

// RouterMetrics is a point-in-time copy of a Router's counters.
type RouterMetrics = linkrouter.Snapshot

// NewRouter validates opts, runs one synchronous membership/lag poll
// and starts the background poller. Router.Handler serves the genlinkd
// client API over the partition groups; Router.Close stops the poller.
func NewRouter(opts RouterOptions) (*Router, error) {
	return linkrouter.New(opts)
}

// PartitionOf is the placement function shared by the sharded index and
// the routing tier: the owning partition of an entity ID among parts
// partitions (FNV-1a mod parts).
func PartitionOf(id string, parts int) int {
	return linkindex.PartitionOf(id, parts)
}

// TokenBlocking returns the default blocking strategy: candidates share a
// lowercased value token.
func TokenBlocking() Blocker { return matching.TokenBlocking() }

// SortedNeighborhood returns a sorted-neighborhood blocker with the given
// window (≤0 means 10): candidates sit near each other in a normalized
// sort order, bounding candidates at O(n·window) under any value skew.
func SortedNeighborhood(window int) Blocker { return matching.SortedNeighborhood(window) }

// QGramBlocking returns a q-gram blocker (q ≤ 0 means 3): candidates
// share a character q-gram, so single typos do not break blocking.
func QGramBlocking(q int) Blocker { return matching.QGramBlocking(q) }

// MultiPass unions the candidates of several blockers — the MultiBlock
// idea of indexing each similarity dimension separately. With no
// arguments it composes token, sorted-neighborhood and q-gram passes.
func MultiPass(passes ...Blocker) Blocker { return matching.MultiPass(passes...) }

// BlockerByName resolves a strategy name from BlockerNames to a Blocker
// with default parameters (nil for unknown names) — handy for CLI flags.
func BlockerByName(name string) Blocker { return matching.BlockerByName(name) }

// BlockerNames lists the selectable blocking strategies.
func BlockerNames() []string { return matching.BlockerNames() }

// CandidatePairs runs a blocker and returns its deduplicated candidate
// pairs — the blocking-quality measurement hook.
func CandidatePairs(bl Blocker, a, b *Source, opts MatchOptions) []CandidatePair {
	return matching.CandidatePairs(bl, a, b, opts)
}

// StreamCandidatePairs enumerates the same deduplicated candidate pairs
// as CandidatePairs but pushes them to yield one at a time instead of
// materializing the full slice — the constant-memory form for pipelines
// that filter or score pairs as they arrive. Setting MatchOptions.Stream
// selects this enumeration inside Match as well.
func StreamCandidatePairs(bl Blocker, a, b *Source, opts MatchOptions, yield func(CandidatePair)) {
	matching.StreamPairs(bl, a, b, opts, yield)
}

// MatchPairs scores precomputed candidate pairs (as returned by
// CandidatePairs) and returns the links sorted like Match, so pipelines
// that already hold the pair list need not re-run the blocker.
func MatchPairs(r *Rule, pairs []CandidatePair, opts MatchOptions) []MatchedLink {
	return matching.MatchPairs(r, pairs, opts)
}

// Dataset generates one of the paper's six evaluation datasets by name
// (Cora, Restaurant, SiderDrugBank, NYT, LinkedMDB, DBpediaDrugBank).
// It returns nil for unknown names.
func Dataset(name string, seed int64) *DataSet {
	gen := datagen.ByName(name)
	if gen == nil {
		return nil
	}
	return gen(seed)
}

// DatasetNames lists the six paper datasets in Table 5 order.
func DatasetNames() []string { return datagen.Names() }

// ParseRuleJSON decodes a rule from JSON.
func ParseRuleJSON(data []byte) (*Rule, error) { return rule.ParseJSON(data) }

// ParseRuleXML decodes a rule from XML.
func ParseRuleXML(data []byte) (*Rule, error) { return rule.ParseXML(data) }

// ReadCSV loads a CSV document into a source.
func ReadCSV(r io.Reader, name string, opts tabular.Options) (*Source, error) {
	return tabular.ReadCSV(r, name, opts)
}

// CSVOptions configures CSV loading.
type CSVOptions = tabular.Options

// ReadLinksCSV loads reference links from CSV (idA,idB,label).
func ReadLinksCSV(r io.Reader) ([]Link, error) { return tabular.ReadLinks(r) }

// ReadNTriples loads an N-Triples document into a source.
func ReadNTriples(r io.Reader, name string) (*Source, error) {
	triples, err := rdf.Parse(r)
	if err != nil {
		return nil, err
	}
	return rdf.ToSource(name, triples), nil
}

// PRPoint is one operating point of a precision-recall curve.
type PRPoint = evalx.PRPoint

// PRCurve sweeps the link threshold over the scores a rule assigns to the
// reference links and returns one operating point per distinct score.
func PRCurve(r *Rule, refs *ReferenceLinks) []PRPoint {
	return evalx.PRCurve(r, refs)
}

// FilterOneToOne reduces a link set to a one-to-one matching by greedy
// score-descending assignment.
func FilterOneToOne(links []MatchedLink) []MatchedLink {
	return matching.FilterOneToOne(links)
}

// TopKPerSource keeps at most k links per source entity (by score);
// k ≤ 0 keeps everything.
func TopKPerSource(links []MatchedLink, k int) []MatchedLink {
	return matching.TopKPerSource(links, k)
}

// WriteSameAs serializes links as owl:sameAs N-Triples (Silk's output
// format).
func WriteSameAs(w io.Writer, links []MatchedLink) error {
	return matching.WriteSameAs(w, links)
}
