// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks, plus the ablation benches called out in
// DESIGN.md. Each BenchmarkTableNN executes the corresponding experiment
// at bench scale (the structure of the paper-scale protocol with reduced
// population/iterations/runs so a bench iteration completes in seconds);
// run `cmd/experiments -full` for paper-scale numbers.
//
// The b.ReportMetric calls attach the experiment's headline quantity
// (usually the final validation F-measure) to the bench output so
// `go test -bench=.` doubles as a results summary.
package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"genlink/internal/carvalho"
	"genlink/internal/datagen"
	"genlink/internal/entity"
	"genlink/internal/experiments"
	"genlink/internal/genlink"
	"genlink/internal/matching"
	"genlink/internal/rule"
	"genlink/internal/similarity"
	"genlink/internal/transform"
)

// benchScale is the reduced protocol used by the table benches.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Runs:           1,
		PopulationSize: 60,
		MaxIterations:  8,
		Checkpoints:    []int{0, 4, 8},
		MaxRefLinks:    60,
		Seed:           1,
	}
}

// ---------------------------------------------------------------------------
// Tables 5 and 6: dataset statistics

func BenchmarkTable05Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := experiments.Table5(1); len(got) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable06Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := experiments.Table6(1); len(got) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---------------------------------------------------------------------------
// Tables 7–12: learning curves

func benchLearningCurve(b *testing.B, dataset string) {
	b.Helper()
	ds := experiments.Dataset(dataset, 1)
	var final experiments.CurveRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.LearningCurve(ds, benchScale())
		final = res.Rows[len(res.Rows)-1]
	}
	b.ReportMetric(final.ValF1, "valF1")
	b.ReportMetric(final.TrainF1, "trainF1")
}

func BenchmarkTable07Cora(b *testing.B)            { benchLearningCurve(b, "Cora") }
func BenchmarkTable08Restaurant(b *testing.B)      { benchLearningCurve(b, "Restaurant") }
func BenchmarkTable09SiderDrugBank(b *testing.B)   { benchLearningCurve(b, "SiderDrugBank") }
func BenchmarkTable10NYT(b *testing.B)             { benchLearningCurve(b, "NYT") }
func BenchmarkTable11LinkedMDB(b *testing.B)       { benchLearningCurve(b, "LinkedMDB") }
func BenchmarkTable12DBpediaDrugBank(b *testing.B) { benchLearningCurve(b, "DBpediaDrugBank") }

// ---------------------------------------------------------------------------
// Table 13: representation comparison (one dataset per bench iteration to
// keep iterations bounded; the full 6×4 sweep lives in cmd/experiments)

func BenchmarkTable13Representations(b *testing.B) {
	ds := experiments.Dataset("SiderDrugBank", 1)
	var fullF1, booleanF1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rep := range []genlink.Representation{genlink.Boolean, genlink.Full} {
			rep := rep
			res := experiments.LearningCurveWithConfig(ds, benchScale(), func(cfg *genlink.Config) {
				cfg.Representation = rep
			})
			last := res.Rows[len(res.Rows)-1]
			if rep == genlink.Full {
				fullF1 = last.ValF1
			} else {
				booleanF1 = last.ValF1
			}
		}
	}
	b.ReportMetric(fullF1, "fullF1")
	b.ReportMetric(booleanF1, "booleanF1")
}

// ---------------------------------------------------------------------------
// Table 14: seeding

func BenchmarkTable14Seeding(b *testing.B) {
	ds := experiments.Dataset("NYT", 1)
	scale := benchScale()
	scale.Checkpoints = []int{0}
	scale.MaxIterations = 1
	var seeded, random float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mode := range []genlink.SeedingMode{genlink.Seeded, genlink.RandomInit} {
			mode := mode
			res := experiments.LearningCurveWithConfig(ds, scale, func(cfg *genlink.Config) {
				cfg.Seeding = mode
			})
			if mode == genlink.Seeded {
				seeded = res.Rows[0].MeanPopulationF1
			} else {
				random = res.Rows[0].MeanPopulationF1
			}
		}
	}
	b.ReportMetric(seeded, "seededF1")
	b.ReportMetric(random, "randomF1")
}

// ---------------------------------------------------------------------------
// Table 15: crossover operators

func BenchmarkTable15Crossover(b *testing.B) {
	ds := experiments.Dataset("Cora", 1)
	var specialized, subtree float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mode := range []genlink.CrossoverMode{genlink.Specialized, genlink.Subtree} {
			mode := mode
			res := experiments.LearningCurveWithConfig(ds, benchScale(), func(cfg *genlink.Config) {
				cfg.Crossover = mode
			})
			last := res.Rows[len(res.Rows)-1]
			if mode == genlink.Specialized {
				specialized = last.ValF1
			} else {
				subtree = last.ValF1
			}
		}
	}
	b.ReportMetric(specialized, "specializedF1")
	b.ReportMetric(subtree, "subtreeF1")
}

// ---------------------------------------------------------------------------
// Carvalho et al. baseline (reference rows of Tables 7/8)

func BenchmarkCarvalhoBaseline(b *testing.B) {
	ds := experiments.Dataset("Cora", 1)
	var val float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.CarvalhoBaseline(ds, benchScale())
		val = res.ValF1
	}
	b.ReportMetric(val, "valF1")
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §6)

func BenchmarkAblationFitness(b *testing.B) {
	ds := experiments.Dataset("LinkedMDB", 1)
	for _, metric := range []genlink.FitnessMetric{genlink.FitnessMCC, genlink.FitnessF1} {
		metric := metric
		b.Run(metric.String(), func(b *testing.B) {
			var val float64
			for i := 0; i < b.N; i++ {
				res := experiments.LearningCurveWithConfig(ds, benchScale(), func(cfg *genlink.Config) {
					cfg.Fitness = metric
				})
				val = res.Rows[len(res.Rows)-1].ValF1
			}
			b.ReportMetric(val, "valF1")
		})
	}
}

func BenchmarkAblationParsimony(b *testing.B) {
	ds := experiments.Dataset("Restaurant", 1)
	for _, coeff := range []float64{0, 0.05, 0.5} {
		coeff := coeff
		b.Run(fmt.Sprintf("coeff=%.2f", coeff), func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				res := experiments.LearningCurveWithConfig(ds, benchScale(), func(cfg *genlink.Config) {
					cfg.ParsimonyCoefficient = coeff
				})
				ops = res.Rows[len(res.Rows)-1].Comparisons
			}
			b.ReportMetric(ops, "comparisons")
		})
	}
}

// BenchmarkAblationBlocking sweeps every blocking strategy on one dataset
// under the fixed probe rule, reporting the candidate-pair count and the
// pairs-completeness of the blocked links against the cartesian matcher
// (linkRecall); bench wall-clock is the cost axis. The cartesian matcher
// itself is the exactness baseline.
func BenchmarkAblationBlocking(b *testing.B) {
	ds := experiments.Dataset("LinkedMDB", 1)
	r := experiments.ProbeRule(ds.Name)
	exact := matching.MatchCartesian(r, ds.A, ds.B, matching.Options{})
	inExact := make(map[matching.Link]bool, len(exact))
	for _, l := range exact {
		inExact[l] = true
	}
	for _, bl := range experiments.AblationBlockers(ds.Name) {
		bl := bl
		b.Run(bl.Name(), func(b *testing.B) {
			opts := matching.Options{Blocker: bl}
			candidates := len(matching.CandidatePairs(bl, ds.A, ds.B, opts))
			var links []matching.Link
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				links = matching.Match(r, ds.A, ds.B, opts)
			}
			recalled := 0
			for _, l := range links {
				if inExact[l] {
					recalled++
				}
			}
			b.ReportMetric(float64(candidates), "candidates")
			b.ReportMetric(float64(recalled)/float64(len(exact)), "linkRecall")
		})
	}
	b.Run("cartesian", func(b *testing.B) {
		var links []matching.Link
		for i := 0; i < b.N; i++ {
			links = matching.MatchCartesian(r, ds.A, ds.B, matching.Options{})
		}
		b.ReportMetric(float64(ds.A.Len()*ds.B.Len()), "candidates")
		b.ReportMetric(float64(len(links))/float64(len(exact)), "linkRecall")
	})
}

// BenchmarkAblationMatchParallel measures pair-partitioned parallel
// matching against the serial matcher on a skew-prone dataset.
func BenchmarkAblationMatchParallel(b *testing.B) {
	ds := experiments.Dataset("Cora", 1)
	r := experiments.ProbeRule(ds.Name)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.MatchParallel(r, ds.A, ds.B, matching.Options{}, workers)
			}
		})
	}
}

// BenchmarkAblationEvalEngine runs the learner with the compiled
// memoizing evaluation engine versus the interpreted tree-walk — the
// learner-level view of the engine speedup (cmd/bench measures the
// isolated fitness pass on full-size reference links and records it to
// BENCH_evalengine.json).
func BenchmarkAblationEvalEngine(b *testing.B) {
	ds := experiments.Dataset("Cora", 1)
	for _, mode := range []struct {
		name string
		off  bool
	}{
		{"engine", false},
		{"treewalk", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			scale := benchScale()
			scale.EngineOff = mode.off
			var final experiments.CurveRow
			for i := 0; i < b.N; i++ {
				res := experiments.LearningCurve(ds, scale)
				final = res.Rows[len(res.Rows)-1]
			}
			b.ReportMetric(final.ValF1, "valF1")
		})
	}
}

func BenchmarkAblationParallel(b *testing.B) {
	ds := experiments.Dataset("Cora", 1)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scale := benchScale()
			scale.Workers = workers
			for i := 0; i < b.N; i++ {
				experiments.LearningCurve(ds, scale)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Micro benches for the hot paths

func BenchmarkLevenshtein(b *testing.B) {
	m := similarity.Levenshtein()
	a := []string{"learning expressive linkage rules"}
	c := []string{"learning expresive linkage rule"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Distance(a, c)
	}
}

func BenchmarkRuleEvaluate(b *testing.B) {
	r := rule.New(rule.NewAggregation(rule.Min(),
		rule.NewComparison(
			rule.NewTransform(transform.LowerCase(), rule.NewProperty("label")),
			rule.NewTransform(transform.LowerCase(), rule.NewProperty("label")),
			similarity.Levenshtein(), 1),
		rule.NewComparison(
			rule.NewProperty("coord"), rule.NewProperty("point"),
			similarity.Geographic(), 50_000)))
	ea := entity.New("a")
	ea.Add("label", "Berlin")
	ea.Add("coord", "52.52 13.405")
	eb := entity.New("b")
	eb.Add("label", "berlin")
	eb.Add("point", "52.52 13.405")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Evaluate(ea, eb)
	}
}

func BenchmarkCrossoverOperators(b *testing.B) {
	r1 := rule.New(rule.NewAggregation(rule.Min(),
		rule.NewComparison(
			rule.NewTransform(transform.LowerCase(), rule.NewProperty("a")),
			rule.NewProperty("b"), similarity.Levenshtein(), 1),
		rule.NewComparison(rule.NewProperty("c"), rule.NewProperty("d"),
			similarity.Date(), 365)))
	r2 := rule.New(rule.NewAggregation(rule.WMean(),
		rule.NewComparison(
			rule.NewTransform(transform.Tokenize(), rule.NewProperty("e")),
			rule.NewTransform(transform.Tokenize(), rule.NewProperty("f")),
			similarity.Jaccard(), 0.5)))
	ops := []genlink.CrossoverOp{
		genlink.FunctionCrossover(genlink.Full),
		genlink.OperatorsCrossover(genlink.Full),
		genlink.AggregationCrossover(),
		genlink.TransformationCrossover(),
		genlink.ThresholdCrossover(),
		genlink.WeightCrossover(),
		genlink.SubtreeCrossover(),
	}
	rng := rand.New(rand.NewSource(1))
	for _, op := range ops {
		op := op
		b.Run(op.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.Cross(rng, r1, r2)
			}
		})
	}
}

func BenchmarkCompatibleProperties(b *testing.B) {
	ds := datagen.SiderDrugBank(1)
	rng := rand.New(rand.NewSource(1))
	measures := []similarity.Measure{similarity.Levenshtein()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		genlink.CompatibleProperties(ds.Refs.Positive, measures, 1, 50, rng)
	}
}

func BenchmarkCarvalhoTreeEval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ev := []float64{0.3, 0.9, 0.5, 0.7}
	trees := make([]*carvalho.Node, 16)
	for i := range trees {
		trees[i] = carvalho.RandomTree(rng, len(ev), 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trees[i%len(trees)].Eval(ev)
	}
}
